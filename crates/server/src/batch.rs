//! Query coalescing: concurrent connections park their queries in a
//! per-tenant accumulator and a single **leader** flushes them as one
//! [`SearchService::top_r_many`] batch, fanning the whole coalesced set
//! onto the shared worker pool at once.
//!
//! The shape is group commit, made **asynchronous** for the event-driven
//! server: [`Batcher::submit_many_async`] parks a frame's queries and
//! returns immediately; a completion callback fires — off the submitting
//! thread — once every query in the frame has a reply. The first
//! submission to find the accumulator leaderless schedules a leader onto
//! the tenant's worker pool (never on the submitting thread: submitters
//! are I/O-loop threads that must not block). The leader waits one batch
//! window so concurrent arrivals can pile in, drains everything pending,
//! and executes it as one pinned-epoch batch. Queries that arrive
//! *during* the flush are handled by a continuation the leader submits
//! to the pool before resigning, so no parked query ever waits for a
//! fresh arrival to wake the accumulator.
//!
//! Deadlines cap the leader's wait: the target flush instant is the
//! window end, shortened to the earliest pending deadline (less a small
//! execution margin), so a query whose `deadline_ms` is shorter than the
//! batch window is flushed early and *runs* instead of expiring while
//! the leader sleeps. The leader parks on a condition variable that
//! every submission signals, so a short-deadline query arriving
//! mid-wait wakes the leader to recompute the target — it no longer
//! waits out a sleep computed before that query existed. A query whose
//! deadline nevertheless passed while parked is answered
//! [`BatchReply::Expired`] without running, and its frame-mates still
//! run — the partial-batch contract.
//!
//! Frames can carry a [`CancelToken`]: when the server's I/O loop sees a
//! client disconnect, it cancels the token, and the frame's queries are
//! skipped at their **batch-slot boundary** — the instant each would
//! start executing inside
//! [`SearchService::top_r_many_pinned_cancellable`] — and answered
//! [`BatchReply::Dropped`]. A dead client's queries thus stop occupying
//! execution slots even when cancellation lands after the batch was
//! dequeued, without anything being interrupted mid-computation.
//!
//! A batch executes all-or-nothing inside the service (`top_r_many`
//! surfaces the first per-query error as a batch error), which must not
//! let one connection poison another's coalesced queries: on a
//! batch-level error the leader falls back to per-query execution, so
//! only the offending query fails.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::unbounded;
use parking_lot::{Condvar, Mutex};
use sd_core::lock_order::{SERVER_BATCH, SERVER_FRAME};
use sd_core::{CancelToken, QuerySpec, SearchError, SearchService, TopRResult};

use crate::registry::Inflight;

/// Sizing and pacing for a tenant's [`Batcher`].
#[derive(Clone, Copy, Debug)]
pub struct BatchLimits {
    /// How long a leader waits before flushing, so concurrent arrivals
    /// coalesce. Zero flushes immediately (still coalescing whatever is
    /// already parked).
    pub window: Duration,
    /// Most queries allowed to park; beyond it new arrivals are shed
    /// with a typed queue-full rejection.
    pub max_pending: usize,
}

impl Default for BatchLimits {
    fn default() -> Self {
        BatchLimits { window: Duration::from_micros(500), max_pending: 1024 }
    }
}

/// One parked query's reply.
#[derive(Clone, Debug)]
pub enum BatchReply {
    /// The query ran; `epoch` is the snapshot the whole batch pinned.
    Answered {
        /// Epoch the batch executed against.
        epoch: u64,
        /// The query's result.
        result: TopRResult,
    },
    /// The query failed; its batch-mates were unaffected.
    Failed(SearchError),
    /// The deadline passed before the query ran.
    Expired,
    /// The frame's [`CancelToken`] was cancelled (the submitting
    /// connection disconnected) before the query's batch slot ran; the
    /// query was skipped without executing.
    Dropped,
}

/// Margin subtracted from a pending deadline when capping the leader's
/// wait, so the flush leaves the query time to actually execute instead
/// of waking exactly as it expires.
const DEADLINE_FLUSH_MARGIN: Duration = Duration::from_millis(5);

/// Where a finished frame's replies go: invoked exactly once, off the
/// submitting thread, with one reply per submitted spec in spec order.
type FrameDone = Box<dyn FnOnce(Vec<BatchReply>) + Send>;

/// One frame's reply-aggregation state: per-query slots filled as the
/// leader resolves them, and the completion callback the last fill
/// hands the replies to.
struct FrameAggState {
    slots: Vec<Option<BatchReply>>,
    missing: usize,
    done: Option<FrameDone>,
}

/// Aggregates one submitted frame's replies. The batcher fills slots in
/// any order; whichever fill completes the frame takes the callback out
/// under the lock, **releases it**, and then invokes — so the callback
/// (which typically takes an I/O thread's `server.io` queue lock) runs
/// with an empty held set.
struct FrameAgg {
    state: Mutex<FrameAggState>,
}

impl FrameAgg {
    fn new(len: usize, done: FrameDone) -> Arc<FrameAgg> {
        Arc::new(FrameAgg {
            state: SERVER_FRAME.mutex(FrameAggState {
                slots: (0..len).map(|_| None).collect(),
                missing: len,
                done: Some(done),
            }),
        })
    }

    fn fill(&self, index: usize, reply: BatchReply) {
        let finished = {
            let mut state = self.state.lock(); // lock: server.frame
            debug_assert!(state.slots[index].is_none(), "slot {index} filled twice");
            state.slots[index] = Some(reply);
            state.missing -= 1;
            if state.missing == 0 {
                Some((std::mem::take(&mut state.slots), state.done.take()))
            } else {
                None
            }
        };
        if let Some((slots, done)) = finished {
            let replies = slots
                .into_iter()
                .map(|slot| {
                    slot.unwrap_or(BatchReply::Failed(SearchError::Internal {
                        invariant: "a completed frame has every reply slot filled",
                    }))
                })
                .collect();
            if let Some(done) = done {
                done(replies);
            }
        }
    }
}

/// One query's address within its frame's [`FrameAgg`].
struct FrameSlot {
    agg: Arc<FrameAgg>,
    index: usize,
}

impl FrameSlot {
    fn deliver(self, reply: BatchReply) {
        self.agg.fill(self.index, reply);
    }
}

struct Pending {
    spec: QuerySpec,
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    reply: FrameSlot,
}

struct Accumulator {
    pending: Vec<Pending>,
    /// Whether some pool continuation currently owns flushing; at most
    /// one leader exists per batcher.
    leader_active: bool,
}

/// Counters the server's `stats` verb exports (snapshot of independent
/// relaxed atomics, like [`sd_core::ServiceStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Queries that entered the accumulator.
    pub queries_batched: u64,
    /// `top_r_many` flushes those queries coalesced into.
    pub batches_executed: u64,
    /// Queries answered [`BatchReply::Expired`].
    pub expired: u64,
    /// Queries shed because the accumulator was full.
    pub shed_queue_full: u64,
    /// Queries answered [`BatchReply::Dropped`] because their
    /// connection had disconnected (the *cause*; always moves in step
    /// with [`BatchStats::cancelled`] today).
    pub dropped_disconnected: u64,
    /// Queries skipped at a batch-slot boundary by a cancelled
    /// [`CancelToken`] (the *mechanism*).
    pub cancelled: u64,
}

/// The typed queue-full rejection [`Batcher::submit_many_async`] sheds
/// with.
#[derive(Clone, Copy, Debug)]
pub struct QueueFull {
    /// Queries parked when the submission was rejected.
    pub pending: u64,
    /// The configured cap.
    pub limit: u64,
}

/// A tenant's query-coalescing accumulator. See the [module docs](self).
pub struct Batcher {
    state: Mutex<Accumulator>,
    /// Signalled on every submission so a parked leader wakes and
    /// recomputes its flush target against the new arrivals' deadlines.
    arrivals: Condvar,
    limits: BatchLimits,
    inflight: Arc<Inflight>,
    queries_batched: AtomicU64,
    batches_executed: AtomicU64,
    expired: AtomicU64,
    shed_queue_full: AtomicU64,
    dropped_disconnected: AtomicU64,
    cancelled: AtomicU64,
}

impl Batcher {
    /// A batcher honoring `limits`, reporting execution to `inflight`.
    pub fn new(limits: BatchLimits, inflight: Arc<Inflight>) -> Self {
        Batcher {
            state: SERVER_BATCH.mutex(Accumulator { pending: Vec::new(), leader_active: false }),
            arrivals: Condvar::new(),
            limits,
            inflight,
            queries_batched: AtomicU64::new(0),
            batches_executed: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            shed_queue_full: AtomicU64::new(0),
            dropped_disconnected: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
        }
    }

    /// Current counters.
    pub fn stats(&self) -> BatchStats {
        BatchStats {
            queries_batched: self.queries_batched.load(Ordering::Relaxed),
            batches_executed: self.batches_executed.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            shed_queue_full: self.shed_queue_full.load(Ordering::Relaxed),
            dropped_disconnected: self.dropped_disconnected.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
        }
    }

    /// Queries currently parked.
    pub fn pending(&self) -> usize {
        self.state.lock().pending.len() // lock: server.batch
    }

    /// Parks `specs` (one frame's queries, all sharing `deadline` and
    /// the optional `cancel` token) and returns **immediately**; `done`
    /// is invoked exactly once — on a worker-pool thread, never the
    /// submitting one — with one [`BatchReply`] per spec in spec order,
    /// after the frame coalesces with whatever else arrives and flushes.
    /// Shed atomically with [`QueueFull`] if parking the frame would
    /// overflow the accumulator (either the whole frame is admitted or
    /// none of it; `done` is not invoked on a shed). An empty frame
    /// completes inline with an empty reply vector.
    ///
    /// This is the server's submission path: I/O-loop threads must not
    /// block, so replies flow back through `done`, which posts a
    /// completion command to the connection's I/O thread.
    pub fn submit_many_async(
        self: &Arc<Self>,
        service: &Arc<SearchService>,
        specs: Vec<QuerySpec>,
        deadline: Option<Instant>,
        cancel: Option<CancelToken>,
        done: impl FnOnce(Vec<BatchReply>) + Send + 'static,
    ) -> Result<(), QueueFull> {
        if specs.is_empty() {
            done(Vec::new());
            return Ok(());
        }
        let agg = FrameAgg::new(specs.len(), Box::new(done));
        let lead = {
            let mut state = self.state.lock(); // lock: server.batch
            if state.pending.len().saturating_add(specs.len()) > self.limits.max_pending {
                let info = QueueFull {
                    pending: state.pending.len() as u64,
                    limit: self.limits.max_pending as u64,
                };
                self.shed_queue_full.fetch_add(specs.len() as u64, Ordering::Relaxed);
                return Err(info);
            }
            for (index, spec) in specs.into_iter().enumerate() {
                state.pending.push(Pending {
                    spec,
                    deadline,
                    cancel: cancel.clone(),
                    reply: FrameSlot { agg: agg.clone(), index },
                });
            }
            // Wake a parked leader: these arrivals may carry a deadline
            // shorter than its current flush target.
            self.arrivals.notify_all();
            if state.leader_active {
                false
            } else {
                state.leader_active = true;
                true
            }
        };
        if lead {
            // Leadership always runs on the pool: the submitter may be
            // an I/O-loop thread, which must never sleep out a window.
            let this = Arc::clone(self);
            let svc = Arc::clone(service);
            service.pool().submit(move || this.lead(&svc));
        }
        Ok(())
    }

    /// Blocking convenience over [`Self::submit_many_async`]: parks the
    /// frame and waits for its replies. For tests and synchronous tools;
    /// the server itself never blocks a thread here.
    pub fn submit_many(
        self: &Arc<Self>,
        service: &Arc<SearchService>,
        specs: Vec<QuerySpec>,
        deadline: Option<Instant>,
    ) -> Result<Vec<BatchReply>, QueueFull> {
        let (tx, rx) = unbounded();
        self.submit_many_async(service, specs, deadline, None, move |replies| {
            let _ = tx.send(replies);
        })?;
        Ok(rx.recv().unwrap_or_default())
    }

    /// Leader duty: wait out the flush target (window end, capped by
    /// pending deadlines, re-evaluated on every arrival), flush once,
    /// then either resign (if the accumulator emptied) or hand
    /// leadership to a worker-pool continuation for the next flush.
    fn lead(self: &Arc<Self>, service: &Arc<SearchService>) {
        self.wait_out_window();
        let batch = {
            let mut state = self.state.lock(); // lock: server.batch
            std::mem::take(&mut state.pending)
        };
        if !batch.is_empty() {
            self.execute(service, batch);
        }
        let handoff = {
            let mut state = self.state.lock(); // lock: server.batch
            if state.pending.is_empty() {
                state.leader_active = false;
                false
            } else {
                true // stay leader on paper; a pool continuation takes over
            }
        };
        if handoff {
            let this = Arc::clone(self);
            let svc = Arc::clone(service);
            service.pool().submit(move || this.lead(&svc));
        }
    }

    /// The leader's wait. The flush target is the window end (fixed when
    /// the wait starts) capped at the earliest pending deadline minus
    /// [`DEADLINE_FLUSH_MARGIN`]; the leader parks on [`Self::arrivals`]
    /// until the target passes, recomputing it after every wake — so an
    /// arrival whose deadline undercuts the current target pulls the
    /// flush forward instead of expiring while the leader sleeps.
    fn wait_out_window(&self) {
        let window = self.limits.window;
        if window.is_zero() {
            return;
        }
        let window_end = Instant::now() + window;
        let mut state = self.state.lock(); // lock: server.batch
        loop {
            let earliest = state.pending.iter().filter_map(|p| p.deadline).min();
            let target = match earliest {
                Some(deadline) => {
                    window_end.min(deadline.checked_sub(DEADLINE_FLUSH_MARGIN).unwrap_or(deadline))
                }
                None => window_end,
            };
            let now = Instant::now();
            if target <= now {
                return;
            }
            self.arrivals.wait_for(&mut state, target - now);
        }
    }

    /// Flushes one drained batch: expire, execute (skipping cancelled
    /// slots), deliver.
    fn execute(&self, service: &Arc<SearchService>, batch: Vec<Pending>) {
        let now = Instant::now();
        let mut live = Vec::with_capacity(batch.len());
        let mut expired = 0u64;
        for entry in batch {
            match entry.deadline {
                Some(d) if d <= now => {
                    expired += 1;
                    entry.reply.deliver(BatchReply::Expired);
                }
                _ => live.push(entry),
            }
        }
        self.queries_batched.fetch_add(live.len() as u64 + expired, Ordering::Relaxed);
        self.expired.fetch_add(expired, Ordering::Relaxed);
        if live.is_empty() {
            return;
        }
        self.batches_executed.fetch_add(1, Ordering::Relaxed);
        let _guard = self.inflight.begin(service.epoch());
        let specs: Vec<QuerySpec> = live.iter().map(|p| p.spec).collect();
        let cancels: Vec<Option<CancelToken>> = live.iter().map(|p| p.cancel.clone()).collect();
        // Counters are bumped *before* the reply that completes a frame is
        // delivered: the completion callback races this function's tail, and
        // a caller inspecting stats from it must see its own drops.
        let drop_counted = |n: u64| {
            self.dropped_disconnected.fetch_add(n, Ordering::Relaxed);
            self.cancelled.fetch_add(n, Ordering::Relaxed);
        };
        match service.top_r_many_pinned_cancellable(&specs, &cancels) {
            Ok((epoch, results)) => {
                drop_counted(results.iter().filter(|r| r.is_none()).count() as u64);
                for (entry, result) in live.into_iter().zip(results) {
                    match result {
                        Some(result) => entry.reply.deliver(BatchReply::Answered { epoch, result }),
                        // The slot boundary found the token cancelled:
                        // the query was skipped, not run-and-discarded.
                        None => entry.reply.deliver(BatchReply::Dropped),
                    }
                }
            }
            Err(_) => {
                // Batch-level failure: one query's error (say, its `r`
                // exceeds the tenant's vertex count) poisoned the
                // all-or-nothing call. Isolate it: run each query alone
                // so only the offender fails. Tokens are re-checked —
                // the fallback is a fresh slot boundary per query.
                for entry in live {
                    if entry.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
                        drop_counted(1);
                        entry.reply.deliver(BatchReply::Dropped);
                        continue;
                    }
                    let epoch = service.epoch();
                    let reply = match service.top_r(&entry.spec) {
                        Ok(result) => BatchReply::Answered { epoch, result },
                        Err(err) => BatchReply::Failed(err),
                    };
                    entry.reply.deliver(reply);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TenantRegistry;
    use sd_core::{paper_figure1_graph, EngineKind};

    fn tenant_with(
        limits: BatchLimits,
    ) -> (Arc<SearchService>, Arc<crate::registry::Tenant>, TenantRegistry) {
        let reg = TenantRegistry::new(limits);
        let (graph, _, _) = paper_figure1_graph();
        let svc = Arc::new(SearchService::new(graph));
        let key = reg.register(svc.clone()).expect("register");
        let tenant = reg.lookup(&key).expect("tenant");
        (svc, tenant, reg)
    }

    #[test]
    fn single_query_round_trips() {
        let (svc, tenant, _reg) =
            tenant_with(BatchLimits { window: Duration::ZERO, max_pending: 8 });
        let spec = QuerySpec::new(3, 4).expect("spec").with_engine(EngineKind::Online);
        let replies = tenant.batcher.submit_many(&svc, vec![spec], None).expect("admitted");
        assert_eq!(replies.len(), 1);
        let BatchReply::Answered { epoch, result } = &replies[0] else {
            panic!("expected answer, got {replies:?}");
        };
        assert_eq!(*epoch, 0);
        let expected = svc.top_r(&spec).expect("in-process");
        assert_eq!(result.entries, expected.entries);
    }

    #[test]
    fn async_submission_completes_off_the_submitting_thread() {
        let (svc, tenant, _reg) =
            tenant_with(BatchLimits { window: Duration::ZERO, max_pending: 8 });
        let spec = QuerySpec::new(3, 2).expect("spec").with_engine(EngineKind::Online);
        let (tx, rx) = unbounded();
        let submitter = std::thread::current().id();
        tenant
            .batcher
            .submit_many_async(&svc, vec![spec, spec], None, None, move |replies| {
                let _ = tx.send((std::thread::current().id(), replies));
            })
            .expect("admitted");
        let (completer, replies) =
            rx.recv_timeout(Duration::from_secs(10)).expect("completion fires");
        assert_ne!(completer, submitter, "done runs on a pool thread, not the submitter");
        assert_eq!(replies.len(), 2);
        assert!(replies.iter().all(|r| matches!(r, BatchReply::Answered { .. })), "{replies:?}");
    }

    #[test]
    fn concurrent_submissions_coalesce_into_one_batch() {
        // A wide window makes coalescing deterministic: the follower
        // parks long before the leader's flush fires.
        let (svc, tenant, _reg) =
            tenant_with(BatchLimits { window: Duration::from_millis(300), max_pending: 64 });
        let spec = QuerySpec::new(3, 2).expect("spec").with_engine(EngineKind::Online);
        let follower = {
            let svc = svc.clone();
            let tenant = tenant.clone();
            std::thread::spawn(move || {
                // Give the leader time to take the accumulator first.
                std::thread::sleep(Duration::from_millis(60));
                tenant.batcher.submit_many(&svc, vec![spec, spec], None)
            })
        };
        let lead_replies =
            tenant.batcher.submit_many(&svc, vec![spec], None).expect("leader admitted");
        let follow_replies = follower.join().expect("join").expect("follower admitted");
        assert_eq!(lead_replies.len(), 1);
        assert_eq!(follow_replies.len(), 2);
        let stats = tenant.batcher.stats();
        assert_eq!(stats.queries_batched, 3);
        assert_eq!(stats.batches_executed, 1, "three queries, one coalesced flush");
        for reply in lead_replies.iter().chain(&follow_replies) {
            assert!(matches!(reply, BatchReply::Answered { epoch: 0, .. }), "got {reply:?}");
        }
    }

    #[test]
    fn queue_overflow_is_shed_atomically() {
        let (svc, tenant, _reg) =
            tenant_with(BatchLimits { window: Duration::ZERO, max_pending: 2 });
        let spec = QuerySpec::new(3, 1).expect("spec");
        let err = tenant
            .batcher
            .submit_many(&svc, vec![spec; 3], None)
            .expect_err("3 queries over a 2-cap accumulator");
        assert_eq!(err.limit, 2);
        assert_eq!(tenant.batcher.stats().shed_queue_full, 3);
        assert_eq!(tenant.batcher.pending(), 0, "nothing half-admitted");
        // A fitting frame still goes through afterwards.
        let ok = tenant.batcher.submit_many(&svc, vec![spec, spec], None).expect("fits");
        assert_eq!(ok.len(), 2);
    }

    #[test]
    fn expired_deadline_queries_skip_execution_but_mates_run() {
        let (svc, tenant, _reg) =
            tenant_with(BatchLimits { window: Duration::from_millis(40), max_pending: 8 });
        let spec = QuerySpec::new(3, 2).expect("spec");
        // Deadline already in the past: expires at flush. A second frame
        // without a deadline coalesces into the same flush and runs.
        let past = Instant::now() - Duration::from_millis(1);
        let follower = {
            let svc = svc.clone();
            let tenant = tenant.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                tenant.batcher.submit_many(&svc, vec![spec], None)
            })
        };
        let expired = tenant.batcher.submit_many(&svc, vec![spec], Some(past)).expect("admitted");
        assert!(matches!(expired[0], BatchReply::Expired), "got {expired:?}");
        let ran = follower.join().expect("join").expect("admitted");
        assert!(matches!(ran[0], BatchReply::Answered { .. }), "got {ran:?}");
        assert_eq!(tenant.batcher.stats().expired, 1);
    }

    /// Regression: the leader used to sleep the *full* window and only
    /// then enforce deadlines, so any query with `deadline_ms` shorter
    /// than the remaining window was answered `Expired` without ever
    /// running. Against that code this test fails (reply is `Expired`
    /// after ~300 ms); with the deadline-capped wait the flush happens
    /// before the deadline and the query runs.
    #[test]
    fn short_deadline_flushes_early_instead_of_expiring() {
        let (svc, tenant, _reg) =
            tenant_with(BatchLimits { window: Duration::from_millis(300), max_pending: 8 });
        let spec = QuerySpec::new(3, 2).expect("spec").with_engine(EngineKind::Online);
        let deadline = Instant::now() + Duration::from_millis(60);
        let start = Instant::now();
        let replies =
            tenant.batcher.submit_many(&svc, vec![spec], Some(deadline)).expect("admitted");
        assert!(
            matches!(replies[0], BatchReply::Answered { .. }),
            "a deadline shorter than the window must flush early and run, got {replies:?}"
        );
        assert!(
            start.elapsed() < Duration::from_millis(300),
            "flush must not wait out the full window"
        );
        assert_eq!(tenant.batcher.stats().expired, 0);
    }

    /// Regression: the leader's wait used to be a plain `thread::sleep`
    /// whose duration was fixed when the wait *started* — a query with a
    /// short deadline arriving mid-sleep could not shorten it, so the
    /// leader slept out the full window and answered that query
    /// `Expired`. Against that code this test fails (the late frame
    /// expires after ~300 ms); with the condvar-parked leader the
    /// arrival wakes it, the target is recomputed, and the query runs
    /// well inside the window.
    #[test]
    fn late_short_deadline_arrival_wakes_the_parked_leader() {
        let (svc, tenant, _reg) =
            tenant_with(BatchLimits { window: Duration::from_millis(300), max_pending: 8 });
        let spec = QuerySpec::new(3, 2).expect("spec").with_engine(EngineKind::Online);
        // Frame A (no deadline) makes the leader park for the window.
        let leader = {
            let svc = svc.clone();
            let tenant = tenant.clone();
            std::thread::spawn(move || tenant.batcher.submit_many(&svc, vec![spec], None))
        };
        // Frame B arrives mid-wait with a deadline far shorter than the
        // window's remainder.
        std::thread::sleep(Duration::from_millis(40));
        let start = Instant::now();
        let deadline = start + Duration::from_millis(60);
        let late = tenant.batcher.submit_many(&svc, vec![spec], Some(deadline)).expect("admitted");
        let elapsed = start.elapsed();
        assert!(
            matches!(late[0], BatchReply::Answered { .. }),
            "a short-deadline arrival must wake the parked leader and run, got {late:?}"
        );
        assert!(
            elapsed < Duration::from_millis(200),
            "the flush must be pulled forward by the arrival, not wait out the window \
             (took {elapsed:?})"
        );
        let first = leader.join().expect("join").expect("admitted");
        assert!(matches!(first[0], BatchReply::Answered { .. }), "got {first:?}");
        assert_eq!(tenant.batcher.stats().expired, 0);
        assert_eq!(tenant.batcher.stats().batches_executed, 1, "both frames share the flush");
    }

    #[test]
    fn cancelled_frames_queries_are_dropped_at_their_slots() {
        let (svc, tenant, _reg) =
            tenant_with(BatchLimits { window: Duration::ZERO, max_pending: 8 });
        let spec = QuerySpec::new(3, 2).expect("spec");
        let token = CancelToken::new();
        token.cancel();
        let (tx, rx) = unbounded();
        tenant
            .batcher
            .submit_many_async(&svc, vec![spec, spec], None, Some(token), move |replies| {
                let _ = tx.send(replies);
            })
            .expect("admitted");
        let replies = rx.recv_timeout(Duration::from_secs(10)).expect("completion fires");
        assert!(replies.iter().all(|r| matches!(r, BatchReply::Dropped)), "got {replies:?}");
        let stats = tenant.batcher.stats();
        assert_eq!(stats.dropped_disconnected, 2);
        assert_eq!(stats.cancelled, 2);
        assert_eq!(svc.queries_served(), 0, "cancelled slots never reach an engine");
        // An un-cancelled token executes normally.
        let live = CancelToken::new();
        let (tx, rx) = unbounded();
        tenant
            .batcher
            .submit_many_async(&svc, vec![spec], None, Some(live), move |replies| {
                let _ = tx.send(replies);
            })
            .expect("admitted");
        let replies = rx.recv_timeout(Duration::from_secs(10)).expect("completion fires");
        assert!(matches!(replies[0], BatchReply::Answered { .. }), "got {replies:?}");
    }

    #[test]
    fn invalid_query_fails_alone_not_its_batch_mates() {
        let (svc, tenant, _reg) =
            tenant_with(BatchLimits { window: Duration::ZERO, max_pending: 8 });
        let good = QuerySpec::new(3, 2).expect("spec");
        let bad = QuerySpec::new(3, 10_000).expect("spec"); // r ≫ n: rejected at run time
        let replies =
            tenant.batcher.submit_many(&svc, vec![good, bad, good], None).expect("admitted");
        assert!(matches!(replies[0], BatchReply::Answered { .. }), "got {:?}", replies[0]);
        assert!(matches!(replies[1], BatchReply::Failed(_)), "got {:?}", replies[1]);
        assert!(matches!(replies[2], BatchReply::Answered { .. }), "got {:?}", replies[2]);
    }
}
