//! The per-connection protocol state machine of the event-driven server.
//!
//! A [`Conn`] owns one [`TransportStream`] and walks it through the
//! frame cycle — **header → payload → dispatched → writing → header** —
//! one non-blocking step at a time. The I/O loop calls
//! [`Conn::on_readable`] / [`Conn::on_writable`] when the poller reports
//! readiness, and [`Conn::wanted_interest`] tells the loop what to arm
//! next; the machine itself never blocks and never talks to the poller.
//!
//! One frame is in flight per connection at a time, matching the
//! blocking server's request/response discipline: once a full frame is
//! assembled the state parks at `Dispatched` and the
//! connection's interest drops to peer-hangup only — pipelined bytes
//! wait in the kernel buffer (level-triggered polling re-reports them
//! the moment the machine returns to header reading), and a client that
//! disconnects mid-query is still *observed* so its queued work can be
//! cancelled.
//!
//! Two asymmetries are deliberate:
//!
//! - A malformed **header** desynchronizes the stream (the length
//!   prefix can't be trusted), so the machine answers with a typed
//!   `BadRequest` error and closes after the write. A malformed
//!   **payload** is length-framed and therefore recoverable — that error
//!   is dispatch's to produce, and the connection survives.
//! - While **writing**, interest is writable-only: a peer that
//!   half-closes after sending a request still gets its response
//!   flushed; a full reset surfaces as a write error and closes.

use bytes::Bytes;
use polling::Interest;
use sd_core::CancelToken;

use crate::proto::{
    server_scope, ErrorCode, ErrorResponse, Frame, FrameHeader, Response, FRAME_HEADER_BYTES,
};
use crate::transport::TransportStream;

/// Where a [`Conn`] stands in the frame cycle.
enum ConnState {
    /// Assembling the fixed-size frame header.
    ReadingHeader { buf: [u8; FRAME_HEADER_BYTES], filled: usize },
    /// Header validated; assembling `payload_len` payload bytes.
    ReadingPayload { header: FrameHeader, buf: Vec<u8>, filled: usize },
    /// A full frame was handed to dispatch; awaiting its response.
    Dispatched,
    /// Flushing a response (or a pre-dispatch error frame).
    Writing { buf: Bytes, written: usize, close_after: bool },
    /// Dead. Every entry point is a no-op that reports closure.
    Closed,
}

/// What a readiness step produced, for the I/O loop to act on.
#[derive(Debug)]
pub enum ConnEvent {
    /// A complete request frame: dispatch it. The machine is now
    /// the dispatched state and reads nothing until
    /// [`Conn::start_write`] delivers the response.
    Frame(Frame),
    /// Nothing actionable; re-arm [`Conn::wanted_interest`] and wait.
    Continue,
    /// A response finished flushing and the machine returned to header
    /// reading — the natural point to close a draining connection.
    Idle,
    /// The connection is finished (peer closed, I/O error, or a
    /// close-after-write completed): deregister and drop it.
    Close,
}

/// One connection's state machine. See the [module docs](self).
pub struct Conn {
    stream: Box<dyn TransportStream>,
    state: ConnState,
    /// Cancels the in-flight frame's queries when the poller observes a
    /// disconnect while [`ConnState::Dispatched`].
    cancel: Option<CancelToken>,
}

impl Conn {
    /// Wraps a freshly accepted stream, ready to read a header.
    pub fn new(stream: Box<dyn TransportStream>) -> Conn {
        Conn { stream, state: fresh_header(), cancel: None }
    }

    /// The fd the I/O loop registers this connection under.
    pub fn fd(&self) -> std::os::fd::RawFd {
        self.stream.fd()
    }

    /// The readiness the I/O loop should arm for the current state.
    pub fn wanted_interest(&self) -> Interest {
        match self.state {
            ConnState::ReadingHeader { .. } | ConnState::ReadingPayload { .. } => {
                Interest::READABLE.or(Interest::PEER_HANGUP)
            }
            // Nothing to read until the response exists, but a client
            // abandoning its query must still be seen.
            ConnState::Dispatched => Interest::PEER_HANGUP,
            ConnState::Writing { .. } => Interest::WRITABLE,
            ConnState::Closed => Interest::NONE,
        }
    }

    /// Whether the connection sits between frames with nothing buffered —
    /// safe to close instantly on drain without dropping accepted work.
    pub fn is_idle(&self) -> bool {
        matches!(self.state, ConnState::ReadingHeader { filled: 0, .. })
    }

    /// Whether a frame is parked in dispatch awaiting its response.
    pub fn is_dispatched(&self) -> bool {
        matches!(self.state, ConnState::Dispatched)
    }

    /// Attaches the token that [`Conn::cancel_inflight`] will flip if
    /// the peer disconnects while the frame is dispatched.
    pub fn set_cancel(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// Cancels the in-flight frame's work, if any. Called by the I/O
    /// loop when the poller reports the peer gone.
    pub fn cancel_inflight(&mut self) {
        if let Some(token) = self.cancel.take() {
            token.cancel();
        }
    }

    /// Advances the read side: pulls bytes until `WouldBlock`, a
    /// complete frame, or closure. Malformed headers are answered with
    /// a typed error and a close-after-write, handled internally — the
    /// caller just re-arms for the returned state.
    pub fn on_readable(&mut self) -> ConnEvent {
        loop {
            match &mut self.state {
                ConnState::ReadingHeader { buf, filled } => {
                    match self.stream.read(&mut buf[*filled..]) {
                        Ok(0) => {
                            self.state = ConnState::Closed;
                            return ConnEvent::Close;
                        }
                        Ok(n) => {
                            *filled += n;
                            if *filled < FRAME_HEADER_BYTES {
                                continue;
                            }
                            match Frame::decode_header(&buf[..]) {
                                Ok(header) if header.payload_len == 0 => {
                                    let frame =
                                        Frame::new(header.verb, header.fingerprint, Bytes::new());
                                    self.state = ConnState::Dispatched;
                                    return ConnEvent::Frame(frame);
                                }
                                Ok(header) => {
                                    let buf = vec![0u8; header.payload_len as usize];
                                    self.state =
                                        ConnState::ReadingPayload { header, buf, filled: 0 };
                                }
                                Err(err) => {
                                    // A malformed header desynchronizes
                                    // the stream: answer with the typed
                                    // error, then close.
                                    let resp = Response::Error(ErrorResponse {
                                        code: ErrorCode::BadRequest,
                                        message: err.to_string(),
                                    });
                                    let bytes = resp.to_frame(server_scope()).encode();
                                    return self.start_write(bytes, true);
                                }
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            return ConnEvent::Continue;
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            self.state = ConnState::Closed;
                            return ConnEvent::Close;
                        }
                    }
                }
                ConnState::ReadingPayload { header, buf, filled } => {
                    if *filled == buf.len() {
                        // Zero-length payloads never get here, but a
                        // spurious wakeup right at completion might.
                        let frame = Frame::new(
                            header.verb,
                            header.fingerprint,
                            Bytes::from(std::mem::take(buf)),
                        );
                        self.state = ConnState::Dispatched;
                        return ConnEvent::Frame(frame);
                    }
                    match self.stream.read(&mut buf[*filled..]) {
                        Ok(0) => {
                            self.state = ConnState::Closed;
                            return ConnEvent::Close;
                        }
                        Ok(n) => {
                            *filled += n;
                            if *filled == buf.len() {
                                let frame = Frame::new(
                                    header.verb,
                                    header.fingerprint,
                                    Bytes::from(std::mem::take(buf)),
                                );
                                self.state = ConnState::Dispatched;
                                return ConnEvent::Frame(frame);
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            return ConnEvent::Continue;
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            self.state = ConnState::Closed;
                            return ConnEvent::Close;
                        }
                    }
                }
                // Readability means nothing mid-dispatch or mid-write;
                // the poller isn't even armed for it. Tolerate the call.
                ConnState::Dispatched | ConnState::Writing { .. } => return ConnEvent::Continue,
                ConnState::Closed => return ConnEvent::Close,
            }
        }
    }

    /// Begins flushing `bytes` as the current frame's response (or a
    /// pre-dispatch error), closing afterwards if `close_after`. Writes
    /// optimistically — most responses fit the socket buffer and finish
    /// here without ever arming `WRITABLE`.
    pub fn start_write(&mut self, bytes: Bytes, close_after: bool) -> ConnEvent {
        if matches!(self.state, ConnState::Closed) {
            return ConnEvent::Close;
        }
        self.cancel = None;
        self.state = ConnState::Writing { buf: bytes, written: 0, close_after };
        self.on_writable()
    }

    /// Advances the write side: flushes until `WouldBlock` or the
    /// response completes, then returns to header reading (or closes).
    pub fn on_writable(&mut self) -> ConnEvent {
        loop {
            match &mut self.state {
                ConnState::Writing { buf, written, close_after } => {
                    if *written == buf.len() {
                        if *close_after {
                            self.state = ConnState::Closed;
                            return ConnEvent::Close;
                        }
                        self.state = fresh_header();
                        return ConnEvent::Idle;
                    }
                    match self.stream.write(&buf.as_ref()[*written..]) {
                        Ok(0) => {
                            self.state = ConnState::Closed;
                            return ConnEvent::Close;
                        }
                        Ok(n) => *written += n,
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            return ConnEvent::Continue;
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            self.state = ConnState::Closed;
                            return ConnEvent::Close;
                        }
                    }
                }
                ConnState::Closed => return ConnEvent::Close,
                // Spurious writability outside a write is ignorable.
                _ => return ConnEvent::Continue,
            }
        }
    }
}

fn fresh_header() -> ConnState {
    ConnState::ReadingHeader { buf: [0u8; FRAME_HEADER_BYTES], filled: 0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{Request, Verb, WireError};
    use std::collections::VecDeque;
    use std::io;
    use std::sync::{Arc, Mutex};

    /// What one scripted `read` call should produce.
    enum Step {
        Bytes(Vec<u8>),
        WouldBlock,
        Eof,
    }

    /// A scripted [`TransportStream`]: reads replay `Step`s, writes
    /// accept at most `write_cap` bytes per call and are captured.
    struct MockStream {
        reads: VecDeque<Step>,
        written: Arc<Mutex<Vec<u8>>>,
        write_cap: usize,
        write_blocks_first: usize,
    }

    impl MockStream {
        fn new(reads: Vec<Step>) -> (MockStream, Arc<Mutex<Vec<u8>>>) {
            let written = Arc::new(Mutex::new(Vec::new()));
            let stream = MockStream {
                reads: reads.into(),
                written: written.clone(),
                write_cap: usize::MAX,
                write_blocks_first: 0,
            };
            (stream, written)
        }
    }

    impl TransportStream for MockStream {
        fn fd(&self) -> std::os::fd::RawFd {
            -1
        }

        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.reads.pop_front() {
                Some(Step::Bytes(mut bytes)) => {
                    let n = bytes.len().min(buf.len());
                    buf[..n].copy_from_slice(&bytes[..n]);
                    if n < bytes.len() {
                        self.reads.push_front(Step::Bytes(bytes.split_off(n)));
                    }
                    Ok(n)
                }
                Some(Step::WouldBlock) | None => Err(io::ErrorKind::WouldBlock.into()),
                Some(Step::Eof) => Ok(0),
            }
        }

        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.write_blocks_first > 0 {
                self.write_blocks_first -= 1;
                return Err(io::ErrorKind::WouldBlock.into());
            }
            let n = buf.len().min(self.write_cap);
            self.written.lock().unwrap().extend_from_slice(&buf[..n]);
            Ok(n)
        }
    }

    fn stats_frame() -> Bytes {
        Request::Stats.to_frame(server_scope()).encode()
    }

    #[test]
    fn header_split_across_reads_still_assembles_a_frame() {
        let wire = stats_frame();
        let (a, b) = wire.as_ref().split_at(7);
        let (stream, _) = MockStream::new(vec![
            Step::Bytes(a.to_vec()),
            Step::WouldBlock,
            Step::Bytes(b.to_vec()),
        ]);
        let mut conn = Conn::new(Box::new(stream));
        assert!(matches!(conn.on_readable(), ConnEvent::Continue), "half a header parks");
        assert!(conn.wanted_interest().contains(Interest::READABLE));
        let ConnEvent::Frame(frame) = conn.on_readable() else {
            panic!("second read completes the frame");
        };
        assert_eq!(frame.verb, Verb::Stats);
        assert!(conn.is_dispatched());
        assert!(
            !conn.wanted_interest().contains(Interest::READABLE),
            "a dispatched connection reads nothing — hangup interest only"
        );
    }

    #[test]
    fn payload_is_assembled_across_reads() {
        let wire = Request::Query(crate::proto::QueryRequest {
            deadline_ms: 0,
            queries: vec![crate::proto::WireQuery::new(3, 2)],
        })
        .to_frame(server_scope())
        .encode();
        assert!(wire.len() > FRAME_HEADER_BYTES, "query frames carry a payload");
        let (head, tail) = wire.as_ref().split_at(FRAME_HEADER_BYTES + 2);
        let (stream, _) = MockStream::new(vec![
            Step::Bytes(head.to_vec()),
            Step::WouldBlock,
            Step::Bytes(tail.to_vec()),
        ]);
        let mut conn = Conn::new(Box::new(stream));
        assert!(matches!(conn.on_readable(), ConnEvent::Continue), "payload still short");
        let ConnEvent::Frame(frame) = conn.on_readable() else {
            panic!("payload completes the frame");
        };
        assert_eq!(frame.verb, Verb::Query);
        assert_eq!(frame.payload.len(), wire.len() - FRAME_HEADER_BYTES);
    }

    #[test]
    fn garbage_header_writes_a_typed_error_and_closes() {
        let (stream, written) = MockStream::new(vec![Step::Bytes(vec![0xAB; 64])]);
        let mut conn = Conn::new(Box::new(stream));
        // The optimistic flush completes immediately, so the error frame
        // is already on the wire and the machine reports closure.
        assert!(matches!(conn.on_readable(), ConnEvent::Close));
        let bytes = written.lock().unwrap().clone();
        let frame = Frame::decode(Bytes::from(bytes)).expect("a well-formed error frame");
        let Response::Error(err) = Response::from_frame(&frame).expect("decodes") else {
            panic!("expected an error response");
        };
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert_eq!(err.message, WireError::BadMagic.to_string());
    }

    #[test]
    fn partial_writes_backpressure_then_finish() {
        let (mut stream, written) = MockStream::new(vec![]);
        stream.write_cap = 5;
        stream.write_blocks_first = 1;
        let mut conn = Conn::new(Box::new(stream));
        // Force the machine into Dispatched so start_write is legal.
        conn.state = ConnState::Dispatched;
        let response = Response::Shutdown.to_frame(server_scope()).encode();
        assert!(
            matches!(conn.start_write(response.clone(), false), ConnEvent::Continue),
            "first write blocks — backpressure"
        );
        assert!(conn.wanted_interest().contains(Interest::WRITABLE));
        assert!(!conn.wanted_interest().contains(Interest::READABLE));
        // Each poll drains another 5 bytes until done.
        let mut events = 0;
        loop {
            events += 1;
            assert!(events < 100, "write never completed");
            match conn.on_writable() {
                ConnEvent::Continue => {}
                ConnEvent::Idle => break,
                other => panic!("unexpected event {other:?}"),
            }
        }
        assert_eq!(written.lock().unwrap().as_slice(), response.as_ref());
        assert!(conn.is_idle(), "machine returned to header reading");
        assert!(conn.wanted_interest().contains(Interest::READABLE));
    }

    #[test]
    fn orderly_peer_close_reports_close() {
        let (stream, _) = MockStream::new(vec![Step::Eof]);
        let mut conn = Conn::new(Box::new(stream));
        assert!(matches!(conn.on_readable(), ConnEvent::Close));
        assert!(matches!(conn.on_readable(), ConnEvent::Close), "closed is terminal");
    }

    #[test]
    fn cancel_inflight_flips_the_attached_token_once() {
        let (stream, _) = MockStream::new(vec![]);
        let mut conn = Conn::new(Box::new(stream));
        let token = CancelToken::new();
        conn.set_cancel(token.clone());
        conn.cancel_inflight();
        assert!(token.is_cancelled());
        // Idempotent and token-consuming.
        conn.cancel_inflight();
    }
}
