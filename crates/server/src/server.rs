//! The event-driven front-end: a fixed set of readiness-loop I/O
//! threads speaking the `sd-wire` protocol of [`crate::proto`] over a
//! pluggable [`Transport`].
//!
//! ## Threading
//!
//! `io_threads` loops (`sd-io-0` … `sd-io-{n-1}`), each multiplexing its
//! share of the client connections over one epoll instance — connection
//! count no longer implies thread count. Thread 0 also owns the
//! transport and accepts; accepted connections are assigned round-robin
//! and never migrate. All CPU work — engine builds, batch fan-out,
//! coalescing — runs on the shared [`sd_core::WorkerPool`]; query
//! replies return to the owning I/O loop as completion commands through
//! its wake pipe. I/O threads never block and never
//! borrow the pool, so a one-core deployment cannot deadlock itself.
//!
//! ## Graceful shutdown
//!
//! [`Server::shutdown`] (or a wire `Shutdown` frame) flips the drain
//! flag and broadcasts a drain command to every loop. From that point no
//! new connection is admitted, idle connections close immediately, and a
//! connection mid-frame is answered first — a frame whose first byte has
//! been read is always read to completion and answered, so an accepted
//! request is never dropped. Draining is epoch-aware through the
//! registry's [`Inflight`](crate::registry::Inflight) gauge, and
//! connections are only force-closed after the grace period expires.
//!
//! ## Disconnect cancellation
//!
//! A client that disconnects while its queries are queued or batched is
//! observed by its loop's poller; the frame's
//! [`CancelToken`](sd_core::CancelToken) is flipped and the queries are
//! skipped at their batch-slot boundary — see [`crate::batch`].

use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use polling::{Interest, Poller};

use crate::admission::AdmissionLimits;
use crate::io::{IoCmd, IoHandle, IoLoop, LISTENER_KEY};
use crate::proto::{
    server_scope, Frame, Response, ServerStatsWire, StatsResponse, TenantStatsWire,
};
use crate::registry::TenantRegistry;
use crate::transport::{TcpTransport, Transport};

/// Everything tunable about a [`Server`], builder-style:
///
/// ```no_run
/// # use sd_server::{Server, ServerConfig, TenantRegistry};
/// # use std::sync::Arc;
/// # let registry = Arc::new(TenantRegistry::new(Default::default()));
/// let server = Server::start(
///     ServerConfig::new()
///         .addr("127.0.0.1:7071")
///         .io_threads(4)
///         .drain_grace(std::time::Duration::from_secs(10)),
///     registry,
/// )?;
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Clone, Debug)]
pub struct ServerConfig {
    addr: String,
    io_threads: usize,
    accept_backlog: i32,
    admission: AdmissionLimits,
    drain_grace: Duration,
}

impl ServerConfig {
    /// The defaults: an ephemeral loopback port, 2 I/O threads, a
    /// 128-deep accept backlog, default admission limits, and a 5 s
    /// drain grace.
    pub fn new() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            io_threads: 2,
            accept_backlog: 128,
            admission: AdmissionLimits::default(),
            drain_grace: Duration::from_secs(5),
        }
    }

    /// Bind address, e.g. `"127.0.0.1:7071"`; port 0 picks an ephemeral
    /// port (read it back with [`Server::local_addr`]).
    pub fn addr(mut self, addr: impl Into<String>) -> ServerConfig {
        self.addr = addr.into();
        self
    }

    /// How many readiness-loop threads multiplex the connections
    /// (clamped to at least 1). This is the server's *total* I/O thread
    /// count, independent of connection count.
    pub fn io_threads(mut self, io_threads: usize) -> ServerConfig {
        self.io_threads = io_threads;
        self
    }

    /// Pending-connection slots in the listener's accept backlog.
    pub fn accept_backlog(mut self, accept_backlog: i32) -> ServerConfig {
        self.accept_backlog = accept_backlog;
        self
    }

    /// Admission thresholds (connections, build-queue depth).
    pub fn admission(mut self, admission: AdmissionLimits) -> ServerConfig {
        self.admission = admission;
        self
    }

    /// How long [`Server::shutdown`] waits for connections to finish
    /// before force-closing them.
    pub fn drain_grace(mut self, drain_grace: Duration) -> ServerConfig {
        self.drain_grace = drain_grace;
        self
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig::new()
    }
}

/// What [`Server::shutdown`] observed while draining.
#[derive(Clone, Debug)]
pub struct DrainReport {
    /// Connections that were open when draining was triggered (all of
    /// them are closed by the time the report exists).
    pub connections_joined: usize,
    /// Connections force-closed because the grace period expired.
    pub forced_closes: usize,
    /// `(epoch, executing)` work units in flight when draining was
    /// triggered — superseded epochs included; the epoch-aware view.
    pub inflight_at_trigger: Vec<(u64, usize)>,
    /// Whether every connection finished within the grace period.
    pub within_grace: bool,
}

pub(crate) struct ServerShared {
    pub(crate) registry: Arc<TenantRegistry>,
    pub(crate) admission: AdmissionLimits,
    pub(crate) local_addr: SocketAddr,
    pub(crate) draining: AtomicBool,
    /// One inbox per I/O loop, indexed by thread.
    pub(crate) io: Vec<Arc<IoHandle>>,
    pub(crate) active_connections: AtomicU64,
    pub(crate) accepted_connections: AtomicU64,
    pub(crate) requests_served: AtomicU64,
    pub(crate) shed_overload: AtomicU64,
    /// Signalled once when draining is first triggered; [`Server::join`]
    /// parks on the paired receiver.
    pub(crate) drain_tx: Sender<()>,
}

/// A running `sd-wire` server. Dropping it drains; prefer
/// [`Server::shutdown`] to also read the [`DrainReport`].
pub struct Server {
    shared: Arc<ServerShared>,
    threads: Vec<JoinHandle<()>>,
    drain_grace: Duration,
    drain_rx: Receiver<()>,
}

impl Server {
    /// Binds a [`TcpTransport`] on `config.addr` and starts serving the
    /// tenants of `registry`.
    pub fn start(config: ServerConfig, registry: Arc<TenantRegistry>) -> io::Result<Server> {
        let transport = TcpTransport::bind(&config.addr, config.accept_backlog)?;
        Server::start_with_transport(Box::new(transport), config, registry)
    }

    /// As [`Server::start`], over any [`Transport`] — the seam a TLS or
    /// Unix-socket front-end plugs into. `config.addr` and
    /// `config.accept_backlog` are ignored (the transport already
    /// bound).
    pub fn start_with_transport(
        transport: Box<dyn Transport>,
        config: ServerConfig,
        registry: Arc<TenantRegistry>,
    ) -> io::Result<Server> {
        let io_threads = config.io_threads.max(1);
        let local_addr = transport.local_addr();
        // Pollers and wakers are created *before* the loops spawn, so
        // the shared handle table is complete before any thread runs.
        let mut pollers = Vec::with_capacity(io_threads);
        let mut handles = Vec::with_capacity(io_threads);
        for _ in 0..io_threads {
            let poller = Poller::new()?;
            let handle = Arc::new(IoHandle::new(&poller)?);
            pollers.push(poller);
            handles.push(handle);
        }
        // The listener lives in loop 0's poller; register it before the
        // loop starts so a connect racing startup is never missed.
        pollers[0].add(transport.listener_fd(), LISTENER_KEY, Interest::READABLE)?;
        let (drain_tx, drain_rx) = unbounded();
        let shared = Arc::new(ServerShared {
            registry,
            admission: config.admission,
            local_addr,
            draining: AtomicBool::new(false),
            io: handles,
            active_connections: AtomicU64::new(0),
            accepted_connections: AtomicU64::new(0),
            requests_served: AtomicU64::new(0),
            shed_overload: AtomicU64::new(0),
            drain_tx,
        });
        let mut threads = Vec::with_capacity(io_threads);
        let mut transport = Some(transport);
        for (index, poller) in pollers.into_iter().enumerate() {
            let io_loop = IoLoop {
                index,
                poller,
                handle: Arc::clone(&shared.io[index]),
                shared: Arc::clone(&shared),
                transport: if index == 0 { transport.take() } else { None },
                conns: Default::default(),
            };
            let thread = std::thread::Builder::new()
                .name(format!("sd-io-{index}"))
                .spawn(move || io_loop.run())?;
            threads.push(thread);
        }
        Ok(Server { shared, threads, drain_grace: config.drain_grace, drain_rx })
    }

    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// The registry this server routes to.
    pub fn registry(&self) -> &Arc<TenantRegistry> {
        &self.shared.registry
    }

    /// Whether draining has been triggered (locally or over the wire).
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Live server-scope counters (the same numbers the `stats` verb
    /// exports).
    pub fn stats(&self) -> ServerStatsWire {
        server_stats(&self.shared)
    }

    /// Flips the drain flag and notifies every I/O loop, without
    /// waiting. Idempotent; [`Server::shutdown`] calls it first.
    pub fn trigger_drain(&self) {
        trigger_drain(&self.shared);
    }

    /// Graceful shutdown: stop accepting, let every in-flight request
    /// finish (up to the grace period), then force-close stragglers and
    /// join every I/O thread.
    pub fn shutdown(mut self) -> DrainReport {
        self.drain()
    }

    /// Blocks until draining is triggered by someone else — a wire
    /// `Shutdown` frame, or [`Server::trigger_drain`] from another
    /// thread — then drains and reports. This is `sd-serve`'s main loop.
    pub fn join(mut self) -> DrainReport {
        let _ = self.drain_rx.recv();
        self.drain()
    }

    fn drain(&mut self) -> DrainReport {
        if self.threads.is_empty() {
            // Already drained (shutdown/join ran; Drop re-enters here).
            return DrainReport {
                connections_joined: 0,
                forced_closes: 0,
                inflight_at_trigger: Vec::new(),
                within_grace: true,
            };
        }
        trigger_drain(&self.shared);
        let inflight_at_trigger = self.shared.registry.inflight().snapshot();
        let connections_joined = self.shared.active_connections.load(Ordering::SeqCst) as usize;
        let deadline = Instant::now().checked_add(self.drain_grace);
        while self.shared.active_connections.load(Ordering::SeqCst) > 0 {
            match deadline {
                Some(d) if Instant::now() < d => std::thread::sleep(Duration::from_millis(2)),
                _ => break,
            }
        }
        let forced = self.shared.active_connections.load(Ordering::SeqCst) as usize;
        if forced > 0 {
            for handle in &self.shared.io {
                handle.post(IoCmd::ForceCloseAll);
            }
            // Force-closing is prompt (each loop just drops its table);
            // bound the wait anyway so a wedged loop cannot hang drop.
            let force_deadline = Instant::now() + Duration::from_secs(5);
            while self.shared.active_connections.load(Ordering::SeqCst) > 0
                && Instant::now() < force_deadline
            {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        for handle in &self.shared.io {
            handle.post(IoCmd::Stop);
        }
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
        DrainReport {
            connections_joined,
            forced_closes: forced,
            inflight_at_trigger,
            within_grace: forced == 0,
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Idempotent: a server consumed by `shutdown`/`join` has no
        // threads left to join.
        let _ = self.drain();
    }
}

pub(crate) fn trigger_drain(shared: &ServerShared) {
    if shared.draining.swap(true, Ordering::SeqCst) {
        return; // already draining; the loops already know
    }
    for handle in &shared.io {
        handle.post(IoCmd::Drain);
    }
    let _ = shared.drain_tx.send(());
}

pub(crate) fn handle_stats(shared: &ServerShared, frame: &Frame) -> Response {
    if frame.fingerprint == server_scope() {
        return Response::Stats(StatsResponse::Server(server_stats(shared)));
    }
    let Some(tenant) = shared.registry.lookup(&frame.fingerprint) else {
        return crate::io::unknown_tenant(frame);
    };
    let service = &tenant.service;
    let stats = service.stats();
    Response::Stats(StatsResponse::Tenant(TenantStatsWire {
        fingerprint: service.fingerprint(),
        epoch: service.epoch(),
        queries_served: stats.queries_served as u64,
        engines_built: stats.engines_built as u64,
        background_builds: stats.background_builds as u64,
        foreground_fallbacks: stats.foreground_fallbacks as u64,
        epochs: stats.epochs as u64,
        updates_applied: stats.updates_applied as u64,
        incremental_tsd_carries: stats.incremental_tsd_carries as u64,
        hybrid_carries: stats.hybrid_carries as u64,
        gct_repairs: stats.gct_repairs as u64,
        parallel_queries: stats.parallel_queries as u64,
        pool_threads: stats.pool_threads as u64,
        queries_by_engine: stats.queries_by_engine.map(|c| c as u64),
    }))
}

pub(crate) fn server_stats(shared: &ServerShared) -> ServerStatsWire {
    let mut queries_batched = 0u64;
    let mut batches_executed = 0u64;
    let mut shed_queue_full = 0u64;
    let mut dropped_disconnected = 0u64;
    let mut cancelled = 0u64;
    // Walking tenants under the routing-table read lock while each
    // batcher snapshot runs is the documented
    // `server.tenants → epoch.ptr`-compatible nesting (batcher stats are
    // lock-free atomics; the service snapshot below pins nothing here).
    shared.registry.for_each(|tenant| {
        let stats = tenant.batcher.stats();
        queries_batched += stats.queries_batched;
        batches_executed += stats.batches_executed;
        shed_queue_full += stats.shed_queue_full;
        dropped_disconnected += stats.dropped_disconnected;
        cancelled += stats.cancelled;
    });
    let pool = sd_core::pool::global();
    ServerStatsWire {
        tenants: shared.registry.len() as u64,
        active_connections: shared.active_connections.load(Ordering::SeqCst),
        accepted_connections: shared.accepted_connections.load(Ordering::Relaxed),
        requests_served: shared.requests_served.load(Ordering::Relaxed),
        queries_batched,
        batches_executed,
        shed_overload: shared.shed_overload.load(Ordering::Relaxed) + shed_queue_full,
        dropped_disconnected,
        cancelled,
        pool_threads: pool.spawned_threads() as u64,
        pool_queued_jobs: pool.queued_jobs() as u64,
    }
}
