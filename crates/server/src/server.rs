//! The TCP front-end: a thread-per-connection listener speaking the
//! `sd-wire` protocol of [`crate::proto`].
//!
//! ## Threading
//!
//! One acceptor thread plus one thread per live connection. Connection
//! threads do blocking I/O and therefore live **outside** the worker
//! pool on purpose: a pool thread parked in `read` would starve the CPU
//! work the pool exists for. All CPU work — engine builds, batch
//! fan-out, coalescing continuations — still runs on the shared
//! [`sd_core::WorkerPool`]; connection threads only park on sockets and
//! reply channels. Threads are spawned through `std::thread::Builder`
//! (the same primitive the pool's own workers use) so spawn failure is a
//! typed error, not a panic.
//!
//! ## Graceful shutdown
//!
//! `shutdown` (or a wire `Shutdown` frame) flips the drain flag and
//! wakes the acceptor with a loopback connect. From that point no new
//! connection is admitted, and every connection thread exits at its next
//! *frame boundary* — a frame whose first byte has been read is always
//! read to completion and answered, so an accepted request is never
//! dropped. Draining is epoch-aware through the registry's
//! [`Inflight`](crate::registry::Inflight) gauge: the report says which
//! epochs (current or superseded) still had work at trigger time, and
//! connections are only force-closed after the grace period expires.

use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::Mutex;
use sd_core::lock_order::SERVER_CONNS;
use sd_core::SearchError;

use crate::admission::AdmissionLimits;
use crate::batch::{BatchReply, LivenessProbe};
use crate::proto::{
    server_scope, ErrorCode, ErrorResponse, Frame, QueryOutcome, QueryRequest, QueryResponse,
    Request, Response, ServerStatsWire, StatsResponse, TenantStatsWire, UpdateResponse,
    FRAME_HEADER_BYTES,
};
use crate::registry::TenantRegistry;

/// Everything tunable about a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `"127.0.0.1:7071"`; port 0 picks an ephemeral
    /// port (read it back with [`Server::local_addr`]).
    pub addr: String,
    /// Admission thresholds (connections, build-queue depth).
    pub admission: AdmissionLimits,
    /// How long [`Server::shutdown`] waits for connections to finish
    /// before force-closing them.
    pub drain_grace: Duration,
    /// How often an idle connection thread re-checks the drain flag.
    pub poll_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            admission: AdmissionLimits::default(),
            drain_grace: Duration::from_secs(5),
            poll_interval: Duration::from_millis(25),
        }
    }
}

/// What [`Server::shutdown`] observed while draining.
#[derive(Clone, Debug)]
pub struct DrainReport {
    /// Connection threads joined cleanly (including force-closed ones).
    pub connections_joined: usize,
    /// Connections force-closed because the grace period expired.
    pub forced_closes: usize,
    /// `(epoch, executing)` work units in flight when draining was
    /// triggered — superseded epochs included; the epoch-aware view.
    pub inflight_at_trigger: Vec<(u64, usize)>,
    /// Whether every connection finished within the grace period.
    pub within_grace: bool,
}

struct ConnTable {
    /// Live connection streams (clones), for force-close at grace expiry.
    streams: Vec<(u64, TcpStream)>,
    /// Join handles of every connection thread ever spawned.
    handles: Vec<JoinHandle<()>>,
}

struct ServerShared {
    registry: Arc<TenantRegistry>,
    admission: AdmissionLimits,
    poll_interval: Duration,
    local_addr: SocketAddr,
    draining: AtomicBool,
    conns: Mutex<ConnTable>,
    active_connections: AtomicU64,
    accepted_connections: AtomicU64,
    requests_served: AtomicU64,
    shed_overload: AtomicU64,
}

/// A running `sd-wire` server. Dropping it drains; prefer
/// [`Server::shutdown`] to also read the [`DrainReport`].
pub struct Server {
    shared: Arc<ServerShared>,
    acceptor: Option<JoinHandle<()>>,
    drain_grace: Duration,
}

impl Server {
    /// Binds `config.addr` and starts accepting frames for the tenants
    /// of `registry`.
    pub fn start(config: ServerConfig, registry: Arc<TenantRegistry>) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            registry,
            admission: config.admission,
            poll_interval: config.poll_interval.max(Duration::from_millis(1)),
            local_addr,
            draining: AtomicBool::new(false),
            conns: SERVER_CONNS.mutex(ConnTable { streams: Vec::new(), handles: Vec::new() }),
            active_connections: AtomicU64::new(0),
            accepted_connections: AtomicU64::new(0),
            requests_served: AtomicU64::new(0),
            shed_overload: AtomicU64::new(0),
        });
        let acceptor_shared = Arc::clone(&shared);
        let acceptor = std::thread::Builder::new()
            .name("sd-accept".into())
            .spawn(move || accept_loop(listener, acceptor_shared))?;
        Ok(Server { shared, acceptor: Some(acceptor), drain_grace: config.drain_grace })
    }

    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// The registry this server routes to.
    pub fn registry(&self) -> &Arc<TenantRegistry> {
        &self.shared.registry
    }

    /// Whether draining has been triggered (locally or over the wire).
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Live server-scope counters (the same numbers the `stats` verb
    /// exports).
    pub fn stats(&self) -> ServerStatsWire {
        server_stats(&self.shared)
    }

    /// Flips the drain flag and wakes the acceptor, without waiting.
    /// Idempotent; [`Server::shutdown`] calls it first.
    pub fn trigger_drain(&self) {
        trigger_drain(&self.shared);
    }

    /// Graceful shutdown: stop accepting, let every in-flight request
    /// finish (up to the grace period), then force-close stragglers and
    /// join every thread.
    pub fn shutdown(mut self) -> DrainReport {
        self.drain()
    }

    /// Blocks until draining is triggered by someone else — a wire
    /// `Shutdown` frame, or [`Server::trigger_drain`] from another
    /// thread — then drains and reports. This is `sd-serve`'s main loop.
    pub fn join(mut self) -> DrainReport {
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        self.drain()
    }

    fn drain(&mut self) -> DrainReport {
        trigger_drain(&self.shared);
        let inflight_at_trigger = self.shared.registry.inflight().snapshot();
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        let deadline = Instant::now().checked_add(self.drain_grace);
        loop {
            let live = {
                let table = self.shared.conns.lock(); // lock: server.conns
                table.streams.len()
            };
            if live == 0 {
                break;
            }
            match deadline {
                Some(d) if Instant::now() < d => std::thread::sleep(Duration::from_millis(2)),
                _ => break,
            }
        }
        let (forced, handles) = {
            let mut table = self.shared.conns.lock(); // lock: server.conns
            let forced = table.streams.len();
            for (_, stream) in table.streams.iter() {
                let _ = stream.shutdown(Shutdown::Both);
            }
            table.streams.clear();
            (forced, std::mem::take(&mut table.handles))
        };
        let connections_joined = handles.len();
        for handle in handles {
            let _ = handle.join();
        }
        DrainReport {
            connections_joined,
            forced_closes: forced,
            inflight_at_trigger,
            within_grace: forced == 0,
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Idempotent: a server consumed by `shutdown`/`join` has no
        // acceptor handle and an empty connection table left to drain.
        let _ = self.drain();
    }
}

fn trigger_drain(shared: &ServerShared) {
    if shared.draining.swap(true, Ordering::SeqCst) {
        return; // already draining; the acceptor is already waking/awake
    }
    // Wake the acceptor out of `accept` so it notices the flag. If the
    // connect fails the listener is already gone — equally fine.
    let _ = TcpStream::connect(shared.local_addr);
}

fn accept_loop(listener: TcpListener, shared: Arc<ServerShared>) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => {
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.draining.load(Ordering::SeqCst) {
            return; // the wake connection (or a late client) — refuse and stop
        }
        shared.accepted_connections.fetch_add(1, Ordering::Relaxed);
        let active = shared.active_connections.load(Ordering::SeqCst);
        if let Err(info) = shared.admission.admit_connection(active as usize) {
            // Shed with the typed frame so the client learns why, then
            // close by dropping the stream.
            shared.shed_overload.fetch_add(1, Ordering::Relaxed);
            let frame = Response::Overloaded(info).to_frame(server_scope());
            write_frame(&stream, &frame);
            continue;
        }
        let conn_id = shared.accepted_connections.load(Ordering::Relaxed);
        let Ok(clone) = stream.try_clone() else {
            continue; // can't track it for force-close; refuse it instead
        };
        shared.active_connections.fetch_add(1, Ordering::SeqCst);
        {
            let mut table = shared.conns.lock(); // lock: server.conns
            table.streams.push((conn_id, clone));
        }
        let conn_shared = Arc::clone(&shared);
        let spawned = std::thread::Builder::new()
            .name(format!("sd-conn-{conn_id}"))
            .spawn(move || connection_loop(stream, conn_id, conn_shared));
        match spawned {
            Ok(handle) => {
                let mut table = shared.conns.lock(); // lock: server.conns
                table.handles.push(handle);
            }
            Err(_) => retire_connection(&shared, conn_id),
        }
    }
}

/// Removes a connection from the live table and the active gauge.
fn retire_connection(shared: &ServerShared, conn_id: u64) {
    let mut table = shared.conns.lock(); // lock: server.conns
    if let Some(pos) = table.streams.iter().position(|(id, _)| *id == conn_id) {
        table.streams.swap_remove(pos);
        drop(table);
        shared.active_connections.fetch_sub(1, Ordering::SeqCst);
    }
}

enum ReadOutcome {
    Full,
    /// Peer closed, I/O failed, or the drain flag fired between frames —
    /// either way the connection is done.
    Closed,
}

/// Reads exactly `buf.len()` bytes. With `at_frame_boundary`, a drain
/// flag seen while **zero** bytes have arrived ends the connection; once
/// the first byte of a frame is in, the read always completes — that is
/// the accepted-requests-never-dropped guarantee. Uses the stream's read
/// timeout as the drain poll interval.
fn read_full(
    stream: &mut TcpStream,
    shared: &ServerShared,
    buf: &mut [u8],
    at_frame_boundary: bool,
) -> ReadOutcome {
    let mut filled = 0usize;
    while filled < buf.len() {
        if at_frame_boundary && filled == 0 && shared.draining.load(Ordering::SeqCst) {
            return ReadOutcome::Closed;
        }
        // UFCS keeps this visibly an I/O read, not a lock acquisition.
        match io::Read::read(&mut *stream, &mut buf[filled..]) {
            Ok(0) => return ReadOutcome::Closed,
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                continue;
            }
            Err(_) => return ReadOutcome::Closed,
        }
    }
    ReadOutcome::Full
}

fn write_frame(mut stream: &TcpStream, frame: &Frame) -> bool {
    io::Write::write_all(&mut stream, frame.encode().as_ref()).is_ok()
}

/// Builds a dequeue-time liveness probe for a connection's batched
/// queries: a nonblocking `peek` on a dup of the socket. `Ok(0)` is an
/// orderly shutdown from the peer; buffered bytes or `WouldBlock` mean
/// the peer is still there. The toggle is safe because the probe only
/// runs while this connection's own thread is parked inside the batcher
/// — it cannot be mid-`read` on the same socket.
fn liveness_probe(stream: &TcpStream) -> Option<LivenessProbe> {
    let probe = stream.try_clone().ok()?;
    Some(Arc::new(move || {
        if probe.set_nonblocking(true).is_err() {
            return false;
        }
        let alive = match probe.peek(&mut [0u8; 1]) {
            Ok(0) => false,
            Ok(_) => true,
            Err(e) => e.kind() == io::ErrorKind::WouldBlock,
        };
        let _ = probe.set_nonblocking(false);
        alive
    }))
}

fn connection_loop(mut stream: TcpStream, conn_id: u64, shared: Arc<ServerShared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.poll_interval));
    let alive = liveness_probe(&stream);
    loop {
        let mut header_bytes = [0u8; FRAME_HEADER_BYTES];
        if matches!(read_full(&mut stream, &shared, &mut header_bytes, true), ReadOutcome::Closed) {
            break;
        }
        let header = match Frame::decode_header(&header_bytes) {
            Ok(header) => header,
            Err(err) => {
                // A malformed header desynchronizes the stream: answer
                // with the typed error, then close.
                let resp = Response::Error(ErrorResponse {
                    code: ErrorCode::BadRequest,
                    message: err.to_string(),
                });
                write_frame(&stream, &resp.to_frame(server_scope()));
                break;
            }
        };
        // The cap was validated in decode_header, so this allocation is
        // bounded by MAX_FRAME_PAYLOAD.
        let mut payload = vec![0u8; header.payload_len as usize];
        if matches!(read_full(&mut stream, &shared, &mut payload, false), ReadOutcome::Closed) {
            break;
        }
        let frame = Frame::new(header.verb, header.fingerprint, Bytes::from(payload));
        let (response, close_after) = dispatch(&shared, &frame, alive.as_ref());
        shared.requests_served.fetch_add(1, Ordering::Relaxed);
        if !write_frame(&stream, &response.to_frame(header.fingerprint)) {
            break;
        }
        if close_after {
            break;
        }
    }
    retire_connection(&shared, conn_id);
}

/// Handles one fully received frame. Returns the response and whether
/// the connection must close afterwards.
fn dispatch(
    shared: &ServerShared,
    frame: &Frame,
    alive: Option<&LivenessProbe>,
) -> (Response, bool) {
    let request = match Request::from_frame(frame) {
        Ok(request) => request,
        Err(err) => {
            // The payload was length-framed, so the stream is still in
            // sync: report and keep the connection.
            let resp = Response::Error(ErrorResponse {
                code: ErrorCode::BadRequest,
                message: err.to_string(),
            });
            return (resp, false);
        }
    };
    match request {
        Request::Query(query) => (handle_query(shared, frame, query, alive), false),
        Request::Update(update) => (handle_update(shared, frame, update.updates), false),
        Request::Stats => (handle_stats(shared, frame), false),
        Request::Shutdown => {
            trigger_drain(shared);
            (Response::Shutdown, true)
        }
    }
}

fn unknown_tenant(frame: &Frame) -> Response {
    let fp = frame.fingerprint;
    Response::Error(ErrorResponse {
        code: ErrorCode::UnknownTenant,
        message: format!(
            "no tenant registered under fingerprint (n={}, m={}, checksum={:#018x})",
            fp.n, fp.m, fp.edge_checksum
        ),
    })
}

fn error_code_of(err: &SearchError) -> ErrorCode {
    match err {
        SearchError::Internal { .. } => ErrorCode::Internal,
        _ => ErrorCode::BadRequest,
    }
}

fn handle_query(
    shared: &ServerShared,
    frame: &Frame,
    query: QueryRequest,
    alive: Option<&LivenessProbe>,
) -> Response {
    let Some(tenant) = shared.registry.lookup(&frame.fingerprint) else {
        return unknown_tenant(frame);
    };
    if let Err(info) = shared.admission.admit_query(tenant.service.pool().queued_jobs()) {
        shared.shed_overload.fetch_add(1, Ordering::Relaxed);
        return Response::Overloaded(info);
    }
    let deadline = if query.deadline_ms == 0 {
        None
    } else {
        Instant::now().checked_add(Duration::from_millis(u64::from(query.deadline_ms)))
    };
    // Resolve specs per query: an invalid one fails alone (its outcome
    // slot), never the frame.
    let mut outcomes: Vec<Option<QueryOutcome>> = Vec::with_capacity(query.queries.len());
    let mut specs = Vec::new();
    let mut spec_slots = Vec::new();
    for (i, wire_query) in query.queries.iter().enumerate() {
        match wire_query.to_spec() {
            Ok(spec) => {
                outcomes.push(None);
                specs.push(spec);
                spec_slots.push(i);
            }
            Err(err) => outcomes.push(Some(QueryOutcome::Failed {
                code: error_code_of(&err),
                message: err.to_string(),
            })),
        }
    }
    let replies =
        match tenant.batcher.submit_many_live(&tenant.service, specs, deadline, alive.cloned()) {
            Ok(replies) => replies,
            Err(full) => {
                shared.shed_overload.fetch_add(1, Ordering::Relaxed);
                return Response::Overloaded(shared.admission.queue_full(full));
            }
        };
    let mut epoch = None;
    for (slot, reply) in spec_slots.into_iter().zip(replies) {
        outcomes[slot] = Some(match reply {
            BatchReply::Answered { epoch: e, result } => {
                epoch = epoch.or(Some(e));
                QueryOutcome::Answered(result.entries)
            }
            BatchReply::Failed(err) => {
                QueryOutcome::Failed { code: error_code_of(&err), message: err.to_string() }
            }
            BatchReply::Expired => QueryOutcome::Expired,
            // The peer is gone; nobody will read this response. Any
            // outcome works — Failed keeps the slot accounted for.
            BatchReply::Dropped => QueryOutcome::Failed {
                code: ErrorCode::Internal,
                message: "connection closed before the query ran".into(),
            },
        });
    }
    let outcomes = outcomes
        .into_iter()
        .map(|o| {
            o.unwrap_or(QueryOutcome::Failed {
                code: ErrorCode::Internal,
                message: "query slot left unfilled".into(),
            })
        })
        .collect();
    Response::Query(QueryResponse {
        epoch: epoch.unwrap_or_else(|| tenant.service.epoch()),
        outcomes,
    })
}

fn handle_update(
    shared: &ServerShared,
    frame: &Frame,
    updates: Vec<sd_graph::GraphUpdate>,
) -> Response {
    let Some(tenant) = shared.registry.lookup(&frame.fingerprint) else {
        return unknown_tenant(frame);
    };
    let _guard = shared.registry.inflight().begin(tenant.service.epoch());
    match tenant.service.apply_updates(&updates) {
        Ok(stats) => Response::Update(UpdateResponse {
            epoch: stats.epoch,
            applied: stats.applied as u64,
            rejected: stats.rejected as u64,
            tsd_repairs: stats.tsd_repairs as u64,
            tsd_carried: stats.tsd_carried,
            n: stats.n as u64,
            m: stats.m as u64,
        }),
        Err(err) => {
            Response::Error(ErrorResponse { code: error_code_of(&err), message: err.to_string() })
        }
    }
}

fn handle_stats(shared: &ServerShared, frame: &Frame) -> Response {
    if frame.fingerprint == server_scope() {
        return Response::Stats(StatsResponse::Server(server_stats(shared)));
    }
    let Some(tenant) = shared.registry.lookup(&frame.fingerprint) else {
        return unknown_tenant(frame);
    };
    let service = &tenant.service;
    let stats = service.stats();
    Response::Stats(StatsResponse::Tenant(TenantStatsWire {
        fingerprint: service.fingerprint(),
        epoch: service.epoch(),
        queries_served: stats.queries_served as u64,
        engines_built: stats.engines_built as u64,
        background_builds: stats.background_builds as u64,
        foreground_fallbacks: stats.foreground_fallbacks as u64,
        epochs: stats.epochs as u64,
        updates_applied: stats.updates_applied as u64,
        incremental_tsd_carries: stats.incremental_tsd_carries as u64,
        hybrid_carries: stats.hybrid_carries as u64,
        gct_repairs: stats.gct_repairs as u64,
        parallel_queries: stats.parallel_queries as u64,
        pool_threads: stats.pool_threads as u64,
        queries_by_engine: stats.queries_by_engine.map(|c| c as u64),
    }))
}

fn server_stats(shared: &ServerShared) -> ServerStatsWire {
    let mut queries_batched = 0u64;
    let mut batches_executed = 0u64;
    let mut shed_queue_full = 0u64;
    let mut dropped_disconnected = 0u64;
    // Walking tenants under the routing-table read lock while each
    // batcher snapshot runs is the documented
    // `server.tenants → epoch.ptr`-compatible nesting (batcher stats are
    // lock-free atomics; the service snapshot below pins nothing here).
    shared.registry.for_each(|tenant| {
        let stats = tenant.batcher.stats();
        queries_batched += stats.queries_batched;
        batches_executed += stats.batches_executed;
        shed_queue_full += stats.shed_queue_full;
        dropped_disconnected += stats.dropped_disconnected;
    });
    let pool = sd_core::pool::global();
    ServerStatsWire {
        tenants: shared.registry.len() as u64,
        active_connections: shared.active_connections.load(Ordering::SeqCst),
        accepted_connections: shared.accepted_connections.load(Ordering::Relaxed),
        requests_served: shared.requests_served.load(Ordering::Relaxed),
        queries_batched,
        batches_executed,
        shed_overload: shared.shed_overload.load(Ordering::Relaxed) + shed_queue_full,
        dropped_disconnected,
        pool_threads: pool.spawned_threads() as u64,
        pool_queued_jobs: pool.queued_jobs() as u64,
    }
}
