//! `sd-serve`: the structural diversity search server.
//!
//! ```text
//! sd-serve serve [ADDR] [--io-threads N]
//!                           host the paper's two fixture graphs on ADDR
//!                           (default 127.0.0.1:7071), multiplexing every
//!                           connection over N readiness-loop threads
//!                           (default 2), until a Shutdown frame arrives
//! sd-serve selftest         start a server on an ephemeral port, drive it
//!                           with a scripted client, verify the answers
//!                           against in-process results, exit 0/1 — the CI
//!                           smoke for the release build
//! ```

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use sd_core::{paper_figure18_graph, paper_figure1_graph, GraphFingerprint, SearchService};
use sd_graph::GraphUpdate;
use sd_server::{
    BatchLimits, Client, QueryOutcome, Server, ServerConfig, TenantRegistry, WireQuery,
};

fn usage() -> ExitCode {
    eprintln!("usage: sd-serve serve [ADDR] [--io-threads N]");
    eprintln!("       sd-serve selftest");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => {
            let mut addr = "127.0.0.1:7071".to_string();
            let mut io_threads = 2usize;
            let mut rest = args[1..].iter();
            while let Some(arg) = rest.next() {
                if arg == "--io-threads" {
                    match rest.next().and_then(|n| n.parse::<usize>().ok()) {
                        Some(n) if n >= 1 => io_threads = n,
                        _ => return usage(),
                    }
                } else if arg.starts_with('-') {
                    return usage();
                } else {
                    addr = arg.clone();
                }
            }
            serve(&addr, io_threads)
        }
        Some("selftest") => selftest(),
        _ => usage(),
    }
}

fn fp_str(fp: GraphFingerprint) -> String {
    format!("n={} m={} checksum={:#018x}", fp.n, fp.m, fp.edge_checksum)
}

/// Builds the demo registry: the paper's Figure 1 and Figure 18 graphs
/// as two tenants.
fn demo_registry() -> (Arc<TenantRegistry>, GraphFingerprint, GraphFingerprint) {
    let registry = Arc::new(TenantRegistry::new(BatchLimits::default()));
    let (fig1, _, _) = paper_figure1_graph();
    let (fig18, _, _) = paper_figure18_graph();
    let key1 = registry
        .register(Arc::new(SearchService::new(fig1)))
        .expect("fresh registry: figure 1 fingerprint free");
    let key18 = registry
        .register(Arc::new(SearchService::new(fig18)))
        .expect("fresh registry: figure 18 fingerprint free");
    (registry, key1, key18)
}

fn serve(addr: &str, io_threads: usize) -> ExitCode {
    let (registry, key1, key18) = demo_registry();
    let config = ServerConfig::new().addr(addr).io_threads(io_threads);
    let server = match Server::start(config, registry) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("sd-serve: cannot bind {addr}: {err}");
            return ExitCode::FAILURE;
        }
    };
    println!("sd-serve: listening on {}", server.local_addr());
    println!("  tenant figure-1  {}", fp_str(key1));
    println!("  tenant figure-18 {}", fp_str(key18));
    println!("  send a Shutdown frame (or `sd-serve selftest`-style client) to stop");
    let report = server.join();
    println!(
        "sd-serve: drained ({} connections joined, {} forced, within grace: {})",
        report.connections_joined, report.forced_closes, report.within_grace
    );
    ExitCode::SUCCESS
}

/// One assertion of the scripted self-test.
fn check(ok: bool, what: &str, failures: &mut u32) {
    if ok {
        println!("  ok   {what}");
    } else {
        println!("  FAIL {what}");
        *failures += 1;
    }
}

fn selftest() -> ExitCode {
    let mut failures = 0u32;
    let (registry, key1, key18) = demo_registry();
    let config = ServerConfig::new().addr("127.0.0.1:0").drain_grace(Duration::from_secs(10));
    let server = match Server::start(config, Arc::clone(&registry)) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("sd-serve selftest: cannot bind: {err}");
            return ExitCode::FAILURE;
        }
    };
    let addr = server.local_addr();
    println!("sd-serve selftest on {addr}");

    let mut client = match Client::connect(addr) {
        Ok(client) => client,
        Err(err) => {
            eprintln!("sd-serve selftest: cannot connect: {err}");
            return ExitCode::FAILURE;
        }
    };

    // Queries against both tenants must byte-match the in-process answers.
    for (name, key, k, r) in [("figure-1", key1, 3, 4), ("figure-18", key18, 4, 3)] {
        let tenant = registry.lookup(&key).expect("registered above");
        let expected = tenant
            .service
            .top_r(&WireQuery::new(k, r).to_spec().expect("valid spec"))
            .expect("in-process answer");
        match client.query(key, 0, vec![WireQuery::new(k, r)]) {
            Ok(resp) => {
                let answered = matches!(
                    resp.outcomes.first(),
                    Some(QueryOutcome::Answered(entries)) if *entries == expected.entries
                );
                check(
                    answered,
                    &format!("{name} query k={k} r={r} matches in-process"),
                    &mut failures,
                );
            }
            Err(err) => check(false, &format!("{name} query failed: {err}"), &mut failures),
        }
    }

    // A live update over the wire publishes a new epoch…
    match client.update(key1, vec![GraphUpdate::Insert { u: 0, v: 16 }]) {
        Ok(resp) => {
            check(resp.applied == 1, "update applied over the wire", &mut failures);
            check(resp.epoch >= 1, "update published a new epoch", &mut failures);
        }
        Err(err) => check(false, &format!("update failed: {err}"), &mut failures),
    }
    // …and queries keep matching the (now updated) in-process service.
    {
        let tenant = registry.lookup(&key1).expect("registered above");
        let spec = WireQuery::new(3, 4).to_spec().expect("valid spec");
        let expected = tenant.service.top_r(&spec).expect("in-process answer");
        match client.query(key1, 0, vec![WireQuery::new(3, 4)]) {
            Ok(resp) => check(
                matches!(
                    resp.outcomes.first(),
                    Some(QueryOutcome::Answered(entries)) if *entries == expected.entries
                ),
                "post-update query matches in-process",
                &mut failures,
            ),
            Err(err) => check(false, &format!("post-update query failed: {err}"), &mut failures),
        }
    }

    // Routing by an unknown fingerprint is a typed error, not a hang.
    let bogus = GraphFingerprint { n: 1, m: 1, edge_checksum: 0xBAD };
    check(
        matches!(
            client.query(bogus, 0, vec![WireQuery::new(2, 1)]),
            Err(sd_server::ServeError::Rejected(e))
                if e.code == sd_server::ErrorCode::UnknownTenant
        ),
        "unknown fingerprint answered UnknownTenant",
        &mut failures,
    );

    // Stats verbs answer in both scopes.
    match client.server_stats() {
        Ok(stats) => {
            check(stats.tenants == 2, "server stats sees both tenants", &mut failures);
            check(stats.requests_served >= 4, "server stats counts requests", &mut failures);
        }
        Err(err) => check(false, &format!("server stats failed: {err}"), &mut failures),
    }
    match client.tenant_stats(key1) {
        Ok(stats) => {
            check(stats.epoch >= 1, "tenant stats reflects the update epoch", &mut failures);
            check(
                stats.fingerprint != key1,
                "tenant stats reports the drifted current fingerprint",
                &mut failures,
            );
        }
        Err(err) => check(false, &format!("tenant stats failed: {err}"), &mut failures),
    }

    // Graceful shutdown over the wire drains cleanly.
    match client.shutdown() {
        Ok(()) => check(true, "shutdown acknowledged", &mut failures),
        Err(err) => check(false, &format!("shutdown failed: {err}"), &mut failures),
    }
    let report = server.join();
    check(report.within_grace, "drain finished within grace", &mut failures);

    if failures == 0 {
        println!("sd-serve selftest: PASS");
        ExitCode::SUCCESS
    } else {
        println!("sd-serve selftest: {failures} FAILURES");
        ExitCode::FAILURE
    }
}
