//! The `sd-wire` protocol: length-prefixed, fingerprint-routed binary
//! frames between `sd-serve` and its clients.
//!
//! Same discipline as [`sd_core::IndexEnvelope`]: every integer is
//! little-endian, every length field is validated before a single byte is
//! sliced or allocated, and a malformed input of *any* shape — truncation
//! at any offset, a wrong magic, a future version, an oversized length
//! prefix, an unknown verb — fails with a typed [`WireError`], never a
//! panic. The adversarial suite in `tests/wire_protocol.rs` walks every
//! one of those shapes.
//!
//! ## Frame layout
//!
//! Every message — request or response — is one frame: a fixed 40-byte
//! header followed by a verb-specific payload.
//!
//! | offset | size | field |
//! |---|---|---|
//! | 0 | 4 | magic `"SDRP"` ([`WIRE_MAGIC`]) |
//! | 4 | 2 | protocol version ([`WIRE_VERSION`]) |
//! | 6 | 1 | verb tag ([`Verb::tag`]) |
//! | 7 | 1 | reserved (zero) |
//! | 8 | 8 | payload length (≤ [`MAX_FRAME_PAYLOAD`]) |
//! | 16 | 8 | tenant fingerprint: vertex count `n` |
//! | 24 | 8 | tenant fingerprint: edge count `m` |
//! | 32 | 8 | tenant fingerprint: FNV-1a edge checksum |
//! | 40 | … | payload |
//!
//! The fingerprint routes the frame to a tenant (the
//! [`GraphFingerprint`] its service was registered under); verbs that
//! address the server itself (`Stats` in server scope, `Shutdown`) send
//! the all-zero fingerprint. Responses echo the request's fingerprint.
//!
//! The payload length cap exists so a hostile length prefix cannot make
//! the server allocate or read unboundedly: the header is rejected before
//! any payload byte is read.
//!
//! ## Verbs and payloads
//!
//! See [`Request`] / [`Response`] for the per-verb payload layouts; each
//! is documented on its struct, and `crates/server/README.md` carries the
//! full byte tables.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use sd_core::{EngineKind, GraphFingerprint, QuerySpec, SearchError, TopREntry};
use sd_graph::GraphUpdate;

/// Frame magic (`"SDRP"` — Structural Diversity Request Protocol).
pub const WIRE_MAGIC: u32 = 0x5344_5250;

/// Current protocol version. Decoding rejects any other value with
/// [`WireError::UnsupportedVersion`]. Version 2 widened the `StatsOk`
/// payload: tenant scope gained `hybrid_carries`/`gct_repairs`, server
/// scope gained `dropped_disconnected`. Version 3 widened it again:
/// server scope gained `cancelled` (queries skipped at a batch-slot
/// boundary after their connection disconnected).
pub const WIRE_VERSION: u16 = 3;

/// Fixed size of the frame header preceding the payload.
pub const FRAME_HEADER_BYTES: usize = 40;

/// Hard cap on a frame's payload length. A header whose length field
/// exceeds this is rejected as [`WireError::OversizedPayload`] *before*
/// any payload byte is read or allocated.
pub const MAX_FRAME_PAYLOAD: u64 = 16 * 1024 * 1024;

/// A decode failure. Every variant is reachable from hostile input; none
/// of them panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Input shorter than its own framing promises.
    Truncated,
    /// Wrong magic number — not an `sd-wire` frame.
    BadMagic,
    /// A frame written by a future (or corrupted) protocol revision.
    UnsupportedVersion {
        /// The version the frame claims.
        version: u16,
    },
    /// A verb tag this build does not know.
    UnknownVerb {
        /// The raw verb tag from the header.
        verb: u8,
    },
    /// A payload length above [`MAX_FRAME_PAYLOAD`] — rejected before any
    /// allocation.
    OversizedPayload {
        /// The length the header claims.
        len: u64,
    },
    /// Bytes after the end of the declared payload.
    TrailingBytes,
    /// A structurally well-framed payload whose contents violate the
    /// verb's invariants (unknown engine tag, unknown update op, invalid
    /// UTF-8, a count that contradicts the payload length, …).
    InvalidPayload {
        /// What was wrong, for the error report.
        what: &'static str,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::UnsupportedVersion { version } => {
                write!(f, "unsupported protocol version {version}")
            }
            WireError::UnknownVerb { verb } => write!(f, "unknown verb tag {verb:#04x}"),
            WireError::OversizedPayload { len } => {
                write!(f, "payload length {len} exceeds cap {MAX_FRAME_PAYLOAD}")
            }
            WireError::TrailingBytes => write!(f, "bytes after declared payload"),
            WireError::InvalidPayload { what } => write!(f, "invalid payload: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// The verb of a frame. Requests use the low tag space, responses the
/// high one, so a desynchronized peer fails fast on the verb check
/// instead of misparsing a payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verb {
    /// A batch of top-r queries against one tenant.
    Query,
    /// A batch of edge updates against one tenant.
    Update,
    /// Live counters: tenant scope (tenant fingerprint) or server scope
    /// (all-zero fingerprint).
    Stats,
    /// Begin graceful shutdown: stop accepting, drain, exit.
    Shutdown,
    /// Response to [`Verb::Query`].
    QueryOk,
    /// Response to [`Verb::Update`].
    UpdateOk,
    /// Response to [`Verb::Stats`].
    StatsOk,
    /// Response to [`Verb::Shutdown`]: draining has begun.
    ShutdownOk,
    /// A typed failure (unknown tenant, malformed payload, internal).
    Error,
    /// The request was shed by admission control; carries the measured
    /// pressure, the limit it crossed, and a retry hint.
    Overloaded,
}

impl Verb {
    /// The tag encoded in the frame header.
    pub fn tag(self) -> u8 {
        match self {
            Verb::Query => 0x01,
            Verb::Update => 0x02,
            Verb::Stats => 0x03,
            Verb::Shutdown => 0x0F,
            Verb::QueryOk => 0x81,
            Verb::UpdateOk => 0x82,
            Verb::StatsOk => 0x83,
            Verb::ShutdownOk => 0x8F,
            Verb::Error => 0xE0,
            Verb::Overloaded => 0xE1,
        }
    }

    /// Inverse of [`Self::tag`]; unknown tags return `None`.
    pub fn from_tag(tag: u8) -> Option<Verb> {
        match tag {
            0x01 => Some(Verb::Query),
            0x02 => Some(Verb::Update),
            0x03 => Some(Verb::Stats),
            0x0F => Some(Verb::Shutdown),
            0x81 => Some(Verb::QueryOk),
            0x82 => Some(Verb::UpdateOk),
            0x83 => Some(Verb::StatsOk),
            0x8F => Some(Verb::ShutdownOk),
            0xE0 => Some(Verb::Error),
            0xE1 => Some(Verb::Overloaded),
            _ => None,
        }
    }
}

/// A decoded frame header: everything before the payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameHeader {
    /// The frame's verb.
    pub verb: Verb,
    /// The tenant the frame addresses (all-zero for server-scoped verbs).
    pub fingerprint: GraphFingerprint,
    /// Declared payload length, already validated ≤ [`MAX_FRAME_PAYLOAD`].
    pub payload_len: u64,
}

/// The all-zero fingerprint, addressing the server itself rather than a
/// tenant.
pub fn server_scope() -> GraphFingerprint {
    GraphFingerprint { n: 0, m: 0, edge_checksum: 0 }
}

/// One wire frame: header plus opaque payload. [`Request`] and
/// [`Response`] give the payload its meaning.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// The frame's verb.
    pub verb: Verb,
    /// The tenant the frame addresses (all-zero for server scope).
    pub fingerprint: GraphFingerprint,
    /// The verb-specific payload bytes.
    pub payload: Bytes,
}

impl Frame {
    /// Frames `payload` under `verb` for `fingerprint`.
    pub fn new(verb: Verb, fingerprint: GraphFingerprint, payload: Bytes) -> Self {
        Frame { verb, fingerprint, payload }
    }

    /// Encodes header + payload into one buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(FRAME_HEADER_BYTES + self.payload.len());
        buf.put_u32_le(WIRE_MAGIC);
        buf.put_u16_le(WIRE_VERSION);
        buf.put_u8(self.verb.tag());
        buf.put_u8(0); // reserved
        buf.put_u64_le(self.payload.len() as u64);
        buf.put_u64_le(self.fingerprint.n);
        buf.put_u64_le(self.fingerprint.m);
        buf.put_u64_le(self.fingerprint.edge_checksum);
        buf.extend_from_slice(self.payload.as_ref());
        buf.freeze()
    }

    /// Decodes the 40-byte header alone — the streaming path: the server
    /// reads exactly [`FRAME_HEADER_BYTES`], validates them, and only then
    /// reads `payload_len` more. A hostile length prefix is rejected here,
    /// before any payload I/O or allocation.
    pub fn decode_header(header: &[u8]) -> Result<FrameHeader, WireError> {
        if header.len() < FRAME_HEADER_BYTES {
            return Err(WireError::Truncated);
        }
        let mut buf = Bytes::from(&header[..FRAME_HEADER_BYTES]);
        if buf.get_u32_le() != WIRE_MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = buf.get_u16_le();
        if version != WIRE_VERSION {
            return Err(WireError::UnsupportedVersion { version });
        }
        let verb_tag = buf.get_u8();
        let _reserved = buf.get_u8();
        let Some(verb) = Verb::from_tag(verb_tag) else {
            return Err(WireError::UnknownVerb { verb: verb_tag });
        };
        let payload_len = buf.get_u64_le();
        if payload_len > MAX_FRAME_PAYLOAD {
            return Err(WireError::OversizedPayload { len: payload_len });
        }
        let fingerprint = GraphFingerprint {
            n: buf.get_u64_le(),
            m: buf.get_u64_le(),
            edge_checksum: buf.get_u64_le(),
        };
        Ok(FrameHeader { verb, fingerprint, payload_len })
    }

    /// Decodes one complete frame from a buffer that must contain exactly
    /// that frame: shorter inputs are [`WireError::Truncated`], longer
    /// ones [`WireError::TrailingBytes`].
    pub fn decode(blob: Bytes) -> Result<Frame, WireError> {
        let header = Self::decode_header(blob.as_ref())?;
        let total = (FRAME_HEADER_BYTES as u64).saturating_add(header.payload_len);
        if (blob.len() as u64) < total {
            return Err(WireError::Truncated);
        }
        if blob.len() as u64 > total {
            return Err(WireError::TrailingBytes);
        }
        let payload = blob.slice(FRAME_HEADER_BYTES..blob.len());
        Ok(Frame { verb: header.verb, fingerprint: header.fingerprint, payload })
    }
}

/// Fails with [`WireError::Truncated`] unless `buf` still holds `bytes`
/// more bytes — called before every fixed-width read, mirroring the
/// envelope decoder's length-before-slice discipline.
fn need(buf: &Bytes, bytes: usize) -> Result<(), WireError> {
    if buf.remaining() < bytes {
        return Err(WireError::Truncated);
    }
    Ok(())
}

/// Fails with [`WireError::TrailingBytes`] unless `buf` is exhausted —
/// every payload decoder ends with this, so a padded payload cannot hide
/// smuggled bytes.
fn done(buf: &Bytes) -> Result<(), WireError> {
    if buf.remaining() != 0 {
        return Err(WireError::TrailingBytes);
    }
    Ok(())
}

fn put_str(buf: &mut BytesMut, s: &str) {
    let bytes = s.as_bytes();
    let len = bytes.len().min(u16::MAX as usize);
    buf.put_u16_le(len as u16);
    buf.extend_from_slice(&bytes[..len]);
}

fn get_str(buf: &mut Bytes) -> Result<String, WireError> {
    need(buf, 2)?;
    let len = buf.get_u16_le() as usize;
    need(buf, len)?;
    let mut bytes = Vec::with_capacity(len);
    for _ in 0..len {
        bytes.push(buf.get_u8());
    }
    String::from_utf8(bytes).map_err(|_| WireError::InvalidPayload { what: "non-UTF-8 string" })
}

// ---------------------------------------------------------------------------
// Requests

/// One query inside a [`QueryRequest`] frame: 13 bytes on the wire —
/// `k: u32`, `r: u64`, engine tag `u8` (0 routes [`EngineKind::Auto`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireQuery {
    /// Trussness threshold (the paper's `k ≥ 2`).
    pub k: u32,
    /// Result size.
    pub r: u64,
    /// Engine to route to; [`EngineKind::Auto`] lets the service decide.
    pub engine: EngineKind,
}

impl WireQuery {
    /// A query routed by the Auto heuristic.
    pub fn new(k: u32, r: u64) -> Self {
        WireQuery { k, r, engine: EngineKind::Auto }
    }

    /// Resolves into the service's spec type; fails (as the service
    /// would) on `k < 2`, `r == 0`, or an `r` beyond `usize`.
    pub fn to_spec(self) -> Result<QuerySpec, SearchError> {
        let r = usize::try_from(self.r).map_err(|_| SearchError::InvalidR)?;
        Ok(QuerySpec::new(self.k, r)?.with_engine(self.engine))
    }
}

/// Payload of [`Verb::Query`]: `deadline_ms u32` (0 = none), `count u16`,
/// then `count` × [`WireQuery`]. Every query in the frame shares the
/// deadline, measured by the server from frame receipt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryRequest {
    /// Per-request deadline in milliseconds from server receipt; 0 means
    /// none. Queries still pending when it expires come back
    /// [`QueryOutcome::Expired`] — a partial batch, not a dropped one.
    pub deadline_ms: u32,
    /// The queries, answered in order.
    pub queries: Vec<WireQuery>,
}

impl QueryRequest {
    /// Encodes the payload (header not included).
    pub fn encode_payload(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(6 + self.queries.len() * 13);
        buf.put_u32_le(self.deadline_ms);
        buf.put_u16_le(self.queries.len().min(u16::MAX as usize) as u16);
        for q in self.queries.iter().take(u16::MAX as usize) {
            buf.put_u32_le(q.k);
            buf.put_u64_le(q.r);
            buf.put_u8(q.engine.tag());
        }
        buf.freeze()
    }

    /// Decodes a payload, validating the count against the bytes actually
    /// present before any allocation.
    pub fn decode_payload(mut buf: Bytes) -> Result<Self, WireError> {
        need(&buf, 6)?;
        let deadline_ms = buf.get_u32_le();
        let count = buf.get_u16_le() as usize;
        need(&buf, count.saturating_mul(13))?;
        let mut queries = Vec::with_capacity(count);
        for _ in 0..count {
            let k = buf.get_u32_le();
            let r = buf.get_u64_le();
            let tag = buf.get_u8();
            let engine = if tag == 0 {
                EngineKind::Auto
            } else {
                EngineKind::from_tag(tag)
                    .ok_or(WireError::InvalidPayload { what: "unknown engine tag" })?
            };
            queries.push(WireQuery { k, r, engine });
        }
        done(&buf)?;
        Ok(QueryRequest { deadline_ms, queries })
    }
}

/// Payload of [`Verb::Update`]: `count u32`, then `count` × 9-byte update
/// (`op u8` — 1 insert, 2 remove — then `u u32`, `v u32`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UpdateRequest {
    /// The edge updates, applied as one
    /// [`sd_core::SearchService::apply_updates`] batch (one new epoch).
    pub updates: Vec<GraphUpdate>,
}

impl UpdateRequest {
    /// Encodes the payload (header not included).
    pub fn encode_payload(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(4 + self.updates.len() * 9);
        buf.put_u32_le(self.updates.len().min(u32::MAX as usize) as u32);
        for upd in &self.updates {
            let (op, u, v) = match *upd {
                GraphUpdate::Insert { u, v } => (1u8, u, v),
                GraphUpdate::Remove { u, v } => (2u8, u, v),
            };
            buf.put_u8(op);
            buf.put_u32_le(u);
            buf.put_u32_le(v);
        }
        buf.freeze()
    }

    /// Decodes a payload, count-validated before allocation.
    pub fn decode_payload(mut buf: Bytes) -> Result<Self, WireError> {
        need(&buf, 4)?;
        let count = buf.get_u32_le() as usize;
        need(&buf, count.saturating_mul(9))?;
        let mut updates = Vec::with_capacity(count);
        for _ in 0..count {
            let op = buf.get_u8();
            let u = buf.get_u32_le();
            let v = buf.get_u32_le();
            updates.push(match op {
                1 => GraphUpdate::Insert { u, v },
                2 => GraphUpdate::Remove { u, v },
                _ => return Err(WireError::InvalidPayload { what: "unknown update op" }),
            });
        }
        done(&buf)?;
        Ok(UpdateRequest { updates })
    }
}

/// A decoded request frame: verb + payload, with the routing fingerprint
/// alongside.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// A [`Verb::Query`] frame.
    Query(QueryRequest),
    /// A [`Verb::Update`] frame.
    Update(UpdateRequest),
    /// A [`Verb::Stats`] frame (empty payload).
    Stats,
    /// A [`Verb::Shutdown`] frame (empty payload).
    Shutdown,
}

impl Request {
    /// Frames this request for `fingerprint`.
    pub fn to_frame(&self, fingerprint: GraphFingerprint) -> Frame {
        let (verb, payload) = match self {
            Request::Query(q) => (Verb::Query, q.encode_payload()),
            Request::Update(u) => (Verb::Update, u.encode_payload()),
            Request::Stats => (Verb::Stats, Bytes::new()),
            Request::Shutdown => (Verb::Shutdown, Bytes::new()),
        };
        Frame::new(verb, fingerprint, payload)
    }

    /// Interprets a frame as a request. Response verbs are
    /// [`WireError::UnknownVerb`] here: a server never accepts them.
    pub fn from_frame(frame: &Frame) -> Result<Request, WireError> {
        match frame.verb {
            Verb::Query => Ok(Request::Query(QueryRequest::decode_payload(frame.payload.clone())?)),
            Verb::Update => {
                Ok(Request::Update(UpdateRequest::decode_payload(frame.payload.clone())?))
            }
            Verb::Stats => {
                done(&frame.payload)?;
                Ok(Request::Stats)
            }
            Verb::Shutdown => {
                done(&frame.payload)?;
                Ok(Request::Shutdown)
            }
            other => Err(WireError::UnknownVerb { verb: other.tag() }),
        }
    }
}

// ---------------------------------------------------------------------------
// Responses

/// Why a request was shed, inside [`Response::Overloaded`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OverloadReason {
    /// The connection limit was reached; the new connection was refused.
    Connections,
    /// The tenant's worker-pool backlog (queued background builds and
    /// fan-out tickets) was above the admission threshold.
    BuildQueue,
    /// The tenant's query-coalescing accumulator was full.
    QueryQueue,
}

impl OverloadReason {
    fn tag(self) -> u8 {
        match self {
            OverloadReason::Connections => 1,
            OverloadReason::BuildQueue => 2,
            OverloadReason::QueryQueue => 3,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            1 => Some(OverloadReason::Connections),
            2 => Some(OverloadReason::BuildQueue),
            3 => Some(OverloadReason::QueryQueue),
            _ => None,
        }
    }
}

/// Payload of [`Verb::Overloaded`]: `reason u8`, `measured u64`,
/// `limit u64`, `retry_after_ms u32` — the typed shed response. The
/// request it answers was **not** executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OverloadInfo {
    /// Which limit was crossed.
    pub reason: OverloadReason,
    /// The pressure measured at admission time.
    pub measured: u64,
    /// The configured limit it crossed.
    pub limit: u64,
    /// Client retry hint, in milliseconds.
    pub retry_after_ms: u32,
}

impl OverloadInfo {
    fn encode_payload(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(21);
        buf.put_u8(self.reason.tag());
        buf.put_u64_le(self.measured);
        buf.put_u64_le(self.limit);
        buf.put_u32_le(self.retry_after_ms);
        buf.freeze()
    }

    fn decode_payload(mut buf: Bytes) -> Result<Self, WireError> {
        need(&buf, 21)?;
        let reason = OverloadReason::from_tag(buf.get_u8())
            .ok_or(WireError::InvalidPayload { what: "unknown overload reason" })?;
        let info = OverloadInfo {
            reason,
            measured: buf.get_u64_le(),
            limit: buf.get_u64_le(),
            retry_after_ms: buf.get_u32_le(),
        };
        done(&buf)?;
        Ok(info)
    }
}

/// Error class inside [`Response::Error`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame's fingerprint routes to no registered tenant.
    UnknownTenant,
    /// The payload decoded but was semantically unusable.
    BadRequest,
    /// The server failed internally while executing the request.
    Internal,
    /// The server is draining and no longer accepts new work.
    Draining,
}

impl ErrorCode {
    fn tag(self) -> u8 {
        match self {
            ErrorCode::UnknownTenant => 1,
            ErrorCode::BadRequest => 2,
            ErrorCode::Internal => 3,
            ErrorCode::Draining => 4,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            1 => Some(ErrorCode::UnknownTenant),
            2 => Some(ErrorCode::BadRequest),
            3 => Some(ErrorCode::Internal),
            4 => Some(ErrorCode::Draining),
            _ => None,
        }
    }
}

/// Payload of [`Verb::Error`]: `code u8`, then a length-prefixed UTF-8
/// message (`len u16`, bytes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ErrorResponse {
    /// The error class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl ErrorResponse {
    fn encode_payload(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(3 + self.message.len());
        buf.put_u8(self.code.tag());
        put_str(&mut buf, &self.message);
        buf.freeze()
    }

    fn decode_payload(mut buf: Bytes) -> Result<Self, WireError> {
        need(&buf, 1)?;
        let code = ErrorCode::from_tag(buf.get_u8())
            .ok_or(WireError::InvalidPayload { what: "unknown error code" })?;
        let message = get_str(&mut buf)?;
        done(&buf)?;
        Ok(ErrorResponse { code, message })
    }
}

/// Per-query outcome inside a [`QueryResponse`] — `status u8` on the
/// wire: 0 answered, 1 failed, 2 deadline-expired.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryOutcome {
    /// The query ran; the entries are exactly the in-process
    /// [`sd_core::TopRResult`] entries for the response's epoch.
    Answered(Vec<TopREntry>),
    /// The query failed (e.g. `r` beyond the tenant's vertex count);
    /// siblings in the same frame still ran.
    Failed {
        /// The error class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The request deadline expired before this query ran — the partial-
    /// batch marker.
    Expired,
}

/// Payload of [`Verb::QueryOk`]: `epoch u64`, `count u16`, then `count`
/// outcomes. An answered outcome is `0u8`, `entry_count u32`, then per
/// entry `vertex u32`, `score u32`, `context_count u32`, and per context
/// `len u32` + `len` × `u32` vertex ids — the exact in-process
/// [`TopREntry`] contents, so loopback answers compare with `==`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryResponse {
    /// The epoch every answered query in this response was pinned to —
    /// reported by [`sd_core::SearchService::top_r_many_pinned`], so it
    /// is exact, not sampled.
    pub epoch: u64,
    /// One outcome per request query, in request order.
    pub outcomes: Vec<QueryOutcome>,
}

impl QueryResponse {
    fn encode_payload(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u64_le(self.epoch);
        buf.put_u16_le(self.outcomes.len().min(u16::MAX as usize) as u16);
        for outcome in self.outcomes.iter().take(u16::MAX as usize) {
            match outcome {
                QueryOutcome::Answered(entries) => {
                    buf.put_u8(0);
                    buf.put_u32_le(entries.len().min(u32::MAX as usize) as u32);
                    for e in entries {
                        buf.put_u32_le(e.vertex);
                        buf.put_u32_le(e.score);
                        buf.put_u32_le(e.contexts.len().min(u32::MAX as usize) as u32);
                        for ctx in &e.contexts {
                            buf.put_u32_le(ctx.len().min(u32::MAX as usize) as u32);
                            for &v in ctx {
                                buf.put_u32_le(v);
                            }
                        }
                    }
                }
                QueryOutcome::Failed { code, message } => {
                    buf.put_u8(1);
                    buf.put_u8(code.tag());
                    put_str(&mut buf, message);
                }
                QueryOutcome::Expired => buf.put_u8(2),
            }
        }
        buf.freeze()
    }

    fn decode_payload(mut buf: Bytes) -> Result<Self, WireError> {
        need(&buf, 10)?;
        let epoch = buf.get_u64_le();
        let count = buf.get_u16_le() as usize;
        let mut outcomes = Vec::with_capacity(count.min(buf.remaining()));
        for _ in 0..count {
            need(&buf, 1)?;
            match buf.get_u8() {
                0 => {
                    need(&buf, 4)?;
                    let entry_count = buf.get_u32_le() as usize;
                    // Each entry is ≥ 12 bytes; bound before allocating.
                    need(&buf, entry_count.saturating_mul(12))?;
                    let mut entries = Vec::with_capacity(entry_count);
                    for _ in 0..entry_count {
                        need(&buf, 12)?;
                        let vertex = buf.get_u32_le();
                        let score = buf.get_u32_le();
                        let ctx_count = buf.get_u32_le() as usize;
                        need(&buf, ctx_count.saturating_mul(4))?;
                        let mut contexts = Vec::with_capacity(ctx_count);
                        for _ in 0..ctx_count {
                            need(&buf, 4)?;
                            let len = buf.get_u32_le() as usize;
                            need(&buf, len.saturating_mul(4))?;
                            let mut ctx = Vec::with_capacity(len);
                            for _ in 0..len {
                                ctx.push(buf.get_u32_le());
                            }
                            contexts.push(ctx);
                        }
                        entries.push(TopREntry { vertex, score, contexts });
                    }
                    outcomes.push(QueryOutcome::Answered(entries));
                }
                1 => {
                    need(&buf, 1)?;
                    let code = ErrorCode::from_tag(buf.get_u8())
                        .ok_or(WireError::InvalidPayload { what: "unknown error code" })?;
                    let message = get_str(&mut buf)?;
                    outcomes.push(QueryOutcome::Failed { code, message });
                }
                2 => outcomes.push(QueryOutcome::Expired),
                _ => return Err(WireError::InvalidPayload { what: "unknown outcome status" }),
            }
        }
        done(&buf)?;
        Ok(QueryResponse { epoch, outcomes })
    }
}

/// Payload of [`Verb::UpdateOk`] — the [`sd_core::UpdateStats`] of the
/// applied batch: `epoch u64`, `applied u64`, `rejected u64`,
/// `tsd_repairs u64`, `tsd_carried u8`, `n u64`, `m u64`. `n`/`m` let the
/// updater track the tenant's *current* fingerprint shape; routing stays
/// keyed by the registration fingerprint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpdateResponse {
    /// The epoch the batch published.
    pub epoch: u64,
    /// Updates that changed the graph.
    pub applied: u64,
    /// No-op updates (duplicate inserts, absent removes, self-loops).
    pub rejected: u64,
    /// Ego-networks repaired by the incremental TSD carry.
    pub tsd_repairs: u64,
    /// Whether the TSD index was carried incrementally.
    pub tsd_carried: bool,
    /// Vertex count after the batch.
    pub n: u64,
    /// Edge count after the batch.
    pub m: u64,
}

impl UpdateResponse {
    fn encode_payload(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(49);
        buf.put_u64_le(self.epoch);
        buf.put_u64_le(self.applied);
        buf.put_u64_le(self.rejected);
        buf.put_u64_le(self.tsd_repairs);
        buf.put_u8(u8::from(self.tsd_carried));
        buf.put_u64_le(self.n);
        buf.put_u64_le(self.m);
        buf.freeze()
    }

    fn decode_payload(mut buf: Bytes) -> Result<Self, WireError> {
        need(&buf, 49)?;
        let resp = UpdateResponse {
            epoch: buf.get_u64_le(),
            applied: buf.get_u64_le(),
            rejected: buf.get_u64_le(),
            tsd_repairs: buf.get_u64_le(),
            tsd_carried: match buf.get_u8() {
                0 => false,
                1 => true,
                _ => return Err(WireError::InvalidPayload { what: "non-boolean tsd_carried" }),
            },
            n: buf.get_u64_le(),
            m: buf.get_u64_le(),
        };
        done(&buf)?;
        Ok(resp)
    }
}

/// Server-scope counters inside [`StatsResponse::Server`] — 11 × `u64`
/// after the scope byte.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStatsWire {
    /// Registered tenants.
    pub tenants: u64,
    /// Connections currently open.
    pub active_connections: u64,
    /// Connections accepted over the server's lifetime (shed ones
    /// included).
    pub accepted_connections: u64,
    /// Request frames fully handled (responses written).
    pub requests_served: u64,
    /// Queries that went through tenant batchers.
    pub queries_batched: u64,
    /// `top_r_many` batches those queries coalesced into.
    pub batches_executed: u64,
    /// Requests shed by admission control (all reasons).
    pub shed_overload: u64,
    /// Batched queries answered `Dropped` because their connection had
    /// already closed.
    pub dropped_disconnected: u64,
    /// Batched queries whose [`sd_core::CancelToken`] was cancelled
    /// before their batch slot ran (today always equal to
    /// `dropped_disconnected` — disconnects are the only cancel source).
    pub cancelled: u64,
    /// Worker threads alive in the process-wide pool.
    pub pool_threads: u64,
    /// Jobs queued (not yet running) in the process-wide pool.
    pub pool_queued_jobs: u64,
}

/// Tenant-scope counters inside [`StatsResponse::Tenant`]: the tenant's
/// *current* fingerprint (which drifts from its routing key as updates
/// land), its epoch, its [`sd_core::ServiceStats`], and the per-engine
/// query counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantStatsWire {
    /// Fingerprint of the current epoch's graph.
    pub fingerprint: GraphFingerprint,
    /// Current epoch number.
    pub epoch: u64,
    /// Queries served.
    pub queries_served: u64,
    /// Engines constructed (any path).
    pub engines_built: u64,
    /// Builds that ran on the worker pool.
    pub background_builds: u64,
    /// Cold queries answered by a fallback engine.
    pub foreground_fallbacks: u64,
    /// Epochs published (update batches).
    pub epochs: u64,
    /// Individual updates applied.
    pub updates_applied: u64,
    /// Epochs whose TSD index was carried incrementally.
    pub incremental_tsd_carries: u64,
    /// Hybrid engines rebuilt inline from a carried TSD index.
    pub hybrid_carries: u64,
    /// GCT entries repaired in place across epoch publishes.
    pub gct_repairs: u64,
    /// Queries answered through the parallel fan-out path.
    pub parallel_queries: u64,
    /// Worker threads alive in the tenant's pool.
    pub pool_threads: u64,
    /// Queries answered per concrete engine, in
    /// [`sd_core::EngineKind::ALL`] order.
    pub queries_by_engine: [u64; 5],
}

/// Payload of [`Verb::StatsOk`]: `scope u8` (0 server, 1 tenant), then
/// the fixed-width scope struct.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StatsResponse {
    /// Whole-server counters (requested with the all-zero fingerprint).
    Server(ServerStatsWire),
    /// One tenant's counters (requested with its routing fingerprint).
    Tenant(TenantStatsWire),
}

impl StatsResponse {
    fn encode_payload(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            StatsResponse::Server(s) => {
                buf.put_u8(0);
                for v in [
                    s.tenants,
                    s.active_connections,
                    s.accepted_connections,
                    s.requests_served,
                    s.queries_batched,
                    s.batches_executed,
                    s.shed_overload,
                    s.dropped_disconnected,
                    s.cancelled,
                    s.pool_threads,
                    s.pool_queued_jobs,
                ] {
                    buf.put_u64_le(v);
                }
            }
            StatsResponse::Tenant(t) => {
                buf.put_u8(1);
                for v in [
                    t.fingerprint.n,
                    t.fingerprint.m,
                    t.fingerprint.edge_checksum,
                    t.epoch,
                    t.queries_served,
                    t.engines_built,
                    t.background_builds,
                    t.foreground_fallbacks,
                    t.epochs,
                    t.updates_applied,
                    t.incremental_tsd_carries,
                    t.hybrid_carries,
                    t.gct_repairs,
                    t.parallel_queries,
                    t.pool_threads,
                ] {
                    buf.put_u64_le(v);
                }
                for v in t.queries_by_engine {
                    buf.put_u64_le(v);
                }
            }
        }
        buf.freeze()
    }

    fn decode_payload(mut buf: Bytes) -> Result<Self, WireError> {
        need(&buf, 1)?;
        match buf.get_u8() {
            0 => {
                need(&buf, 11 * 8)?;
                let s = StatsResponse::Server(ServerStatsWire {
                    tenants: buf.get_u64_le(),
                    active_connections: buf.get_u64_le(),
                    accepted_connections: buf.get_u64_le(),
                    requests_served: buf.get_u64_le(),
                    queries_batched: buf.get_u64_le(),
                    batches_executed: buf.get_u64_le(),
                    shed_overload: buf.get_u64_le(),
                    dropped_disconnected: buf.get_u64_le(),
                    cancelled: buf.get_u64_le(),
                    pool_threads: buf.get_u64_le(),
                    pool_queued_jobs: buf.get_u64_le(),
                });
                done(&buf)?;
                Ok(s)
            }
            1 => {
                need(&buf, 20 * 8)?;
                let fingerprint = GraphFingerprint {
                    n: buf.get_u64_le(),
                    m: buf.get_u64_le(),
                    edge_checksum: buf.get_u64_le(),
                };
                let mut t = TenantStatsWire {
                    fingerprint,
                    epoch: buf.get_u64_le(),
                    queries_served: buf.get_u64_le(),
                    engines_built: buf.get_u64_le(),
                    background_builds: buf.get_u64_le(),
                    foreground_fallbacks: buf.get_u64_le(),
                    epochs: buf.get_u64_le(),
                    updates_applied: buf.get_u64_le(),
                    incremental_tsd_carries: buf.get_u64_le(),
                    hybrid_carries: buf.get_u64_le(),
                    gct_repairs: buf.get_u64_le(),
                    parallel_queries: buf.get_u64_le(),
                    pool_threads: buf.get_u64_le(),
                    queries_by_engine: [0; 5],
                };
                for slot in &mut t.queries_by_engine {
                    *slot = buf.get_u64_le();
                }
                done(&buf)?;
                Ok(StatsResponse::Tenant(t))
            }
            _ => Err(WireError::InvalidPayload { what: "unknown stats scope" }),
        }
    }
}

/// A decoded response frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// A [`Verb::QueryOk`] frame.
    Query(QueryResponse),
    /// A [`Verb::UpdateOk`] frame.
    Update(UpdateResponse),
    /// A [`Verb::StatsOk`] frame.
    Stats(StatsResponse),
    /// A [`Verb::ShutdownOk`] frame.
    Shutdown,
    /// A [`Verb::Error`] frame.
    Error(ErrorResponse),
    /// A [`Verb::Overloaded`] frame.
    Overloaded(OverloadInfo),
}

impl Response {
    /// Frames this response, echoing the request's `fingerprint`.
    pub fn to_frame(&self, fingerprint: GraphFingerprint) -> Frame {
        let (verb, payload) = match self {
            Response::Query(q) => (Verb::QueryOk, q.encode_payload()),
            Response::Update(u) => (Verb::UpdateOk, u.encode_payload()),
            Response::Stats(s) => (Verb::StatsOk, s.encode_payload()),
            Response::Shutdown => (Verb::ShutdownOk, Bytes::new()),
            Response::Error(e) => (Verb::Error, e.encode_payload()),
            Response::Overloaded(o) => (Verb::Overloaded, o.encode_payload()),
        };
        Frame::new(verb, fingerprint, payload)
    }

    /// Interprets a frame as a response. Request verbs are
    /// [`WireError::UnknownVerb`] here: a client never accepts them.
    pub fn from_frame(frame: &Frame) -> Result<Response, WireError> {
        match frame.verb {
            Verb::QueryOk => {
                Ok(Response::Query(QueryResponse::decode_payload(frame.payload.clone())?))
            }
            Verb::UpdateOk => {
                Ok(Response::Update(UpdateResponse::decode_payload(frame.payload.clone())?))
            }
            Verb::StatsOk => {
                Ok(Response::Stats(StatsResponse::decode_payload(frame.payload.clone())?))
            }
            Verb::ShutdownOk => {
                done(&frame.payload)?;
                Ok(Response::Shutdown)
            }
            Verb::Error => {
                Ok(Response::Error(ErrorResponse::decode_payload(frame.payload.clone())?))
            }
            Verb::Overloaded => {
                Ok(Response::Overloaded(OverloadInfo::decode_payload(frame.payload.clone())?))
            }
            other => Err(WireError::UnknownVerb { verb: other.tag() }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(seed: u64) -> GraphFingerprint {
        GraphFingerprint { n: seed, m: seed * 2 + 1, edge_checksum: seed ^ 0xDEAD_BEEF }
    }

    #[test]
    fn verb_tags_round_trip() {
        for verb in [
            Verb::Query,
            Verb::Update,
            Verb::Stats,
            Verb::Shutdown,
            Verb::QueryOk,
            Verb::UpdateOk,
            Verb::StatsOk,
            Verb::ShutdownOk,
            Verb::Error,
            Verb::Overloaded,
        ] {
            assert_eq!(Verb::from_tag(verb.tag()), Some(verb));
        }
        assert_eq!(Verb::from_tag(0x00), None);
        assert_eq!(Verb::from_tag(0x42), None);
    }

    #[test]
    fn frame_round_trips_header_and_payload() {
        let frame = Frame::new(Verb::Query, fp(7), Bytes::from(vec![1, 2, 3, 4, 5]));
        let decoded = Frame::decode(frame.encode()).expect("round trip");
        assert_eq!(decoded, frame);
    }

    #[test]
    fn query_request_round_trips() {
        let req = QueryRequest {
            deadline_ms: 250,
            queries: vec![
                WireQuery::new(3, 5),
                WireQuery { k: 4, r: 10, engine: EngineKind::Online },
                WireQuery { k: 2, r: 1, engine: EngineKind::Gct },
            ],
        };
        let decoded = QueryRequest::decode_payload(req.encode_payload()).expect("round trip");
        assert_eq!(decoded, req);
    }

    #[test]
    fn update_request_round_trips() {
        let req = UpdateRequest {
            updates: vec![GraphUpdate::Insert { u: 1, v: 9 }, GraphUpdate::Remove { u: 0, v: 3 }],
        };
        let decoded = UpdateRequest::decode_payload(req.encode_payload()).expect("round trip");
        assert_eq!(decoded, req);
    }

    #[test]
    fn every_response_round_trips_through_frames() {
        let responses = vec![
            Response::Query(QueryResponse {
                epoch: 4,
                outcomes: vec![
                    QueryOutcome::Answered(vec![TopREntry {
                        vertex: 3,
                        score: 2,
                        contexts: vec![vec![1, 2, 3], vec![4]],
                    }]),
                    QueryOutcome::Failed {
                        code: ErrorCode::BadRequest,
                        message: "r exceeds n".into(),
                    },
                    QueryOutcome::Expired,
                ],
            }),
            Response::Update(UpdateResponse {
                epoch: 9,
                applied: 3,
                rejected: 1,
                tsd_repairs: 17,
                tsd_carried: true,
                n: 100,
                m: 412,
            }),
            Response::Stats(StatsResponse::Server(ServerStatsWire {
                tenants: 2,
                active_connections: 5,
                accepted_connections: 19,
                requests_served: 120,
                queries_batched: 340,
                batches_executed: 41,
                shed_overload: 3,
                dropped_disconnected: 2,
                cancelled: 2,
                pool_threads: 8,
                pool_queued_jobs: 0,
            })),
            Response::Stats(StatsResponse::Tenant(TenantStatsWire {
                fingerprint: fp(11),
                epoch: 6,
                queries_served: 77,
                engines_built: 3,
                background_builds: 2,
                foreground_fallbacks: 1,
                epochs: 6,
                updates_applied: 44,
                incremental_tsd_carries: 6,
                hybrid_carries: 4,
                gct_repairs: 39,
                parallel_queries: 70,
                pool_threads: 4,
                queries_by_engine: [1, 2, 3, 4, 5],
            })),
            Response::Shutdown,
            Response::Error(ErrorResponse {
                code: ErrorCode::UnknownTenant,
                message: "no such tenant".into(),
            }),
            Response::Overloaded(OverloadInfo {
                reason: OverloadReason::BuildQueue,
                measured: 71,
                limit: 64,
                retry_after_ms: 50,
            }),
        ];
        for resp in responses {
            let frame = resp.to_frame(fp(11));
            let wire = frame.encode();
            let back = Response::from_frame(&Frame::decode(wire).expect("frame")).expect("payload");
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn every_request_round_trips_through_frames() {
        let requests = vec![
            Request::Query(QueryRequest { deadline_ms: 0, queries: vec![WireQuery::new(2, 3)] }),
            Request::Update(UpdateRequest { updates: vec![GraphUpdate::Insert { u: 0, v: 1 }] }),
            Request::Stats,
            Request::Shutdown,
        ];
        for req in requests {
            let frame = req.to_frame(fp(5));
            let back =
                Request::from_frame(&Frame::decode(frame.encode()).expect("frame")).expect("req");
            assert_eq!(back, req);
        }
    }

    #[test]
    fn wire_query_resolves_to_spec() {
        let spec = WireQuery { k: 3, r: 5, engine: EngineKind::Bound }.to_spec().expect("valid");
        assert_eq!((spec.k(), spec.r(), spec.engine()), (3, 5, EngineKind::Bound));
        assert!(WireQuery::new(1, 5).to_spec().is_err(), "k < 2 rejected");
        assert!(WireQuery::new(3, 0).to_spec().is_err(), "r = 0 rejected");
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_payload() {
        let mut bytes = Frame::new(Verb::Query, fp(1), Bytes::new()).encode().as_ref().to_vec();
        bytes[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(
            Frame::decode_header(&bytes),
            Err(WireError::OversizedPayload { len: u64::MAX })
        );
    }

    #[test]
    fn server_scope_fingerprint_is_all_zero() {
        let fp = server_scope();
        assert_eq!((fp.n, fp.m, fp.edge_checksum), (0, 0, 0));
    }
}
