//! The transport seam of the event-driven server: how bytes arrive,
//! abstracted from *what* they mean.
//!
//! [`Transport`] is the listening side — it owns a non-blocking acceptor
//! and hands out [`TransportStream`]s — and a `TransportStream` is one
//! accepted connection's byte pipe, also non-blocking. The server's I/O
//! loops ([`crate::Server`]) are written entirely against these traits:
//! they register the transport's raw fds with a [`polling::Poller`],
//! wait for readiness, and call `read`/`write` until `WouldBlock`. The
//! loop never learns what kind of socket it is driving, which is the
//! point — a TLS or Unix-socket transport drops in by implementing two
//! traits, without touching the readiness loop, the connection state
//! machine, or dispatch.
//!
//! [`TcpTransport`] is the concrete transport served today: plain TCP
//! with `TCP_NODELAY` on accepted streams (the protocol is
//! request/response; Nagle only adds latency).

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};

/// One accepted connection's non-blocking byte pipe.
///
/// `read` and `write` follow non-blocking socket semantics: they return
/// `Err(WouldBlock)` when the socket isn't ready, `Ok(0)` from `read`
/// on orderly peer close, and any other error means the connection is
/// dead. The I/O loop only calls them when the poller reported the
/// matching readiness, but must still tolerate spurious `WouldBlock`.
pub trait TransportStream: Send {
    /// The fd the I/O loop registers with its poller.
    fn fd(&self) -> RawFd;
    /// Non-blocking read into `buf`.
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize>;
    /// Non-blocking write of `buf`, returning bytes accepted.
    fn write(&mut self, buf: &[u8]) -> io::Result<usize>;
}

/// The listening side: a non-blocking acceptor the I/O loop polls like
/// any other fd.
pub trait Transport: Send + 'static {
    /// The bound address (with the OS-chosen port resolved).
    fn local_addr(&self) -> SocketAddr;
    /// The listener fd the I/O loop registers for readability.
    fn listener_fd(&self) -> RawFd;
    /// Accepts one pending connection, or `Ok(None)` when the backlog
    /// is empty (`WouldBlock` is not an error on this path — the loop
    /// re-polls). Transient per-connection failures (a peer that reset
    /// between readiness and accept) also surface as `Ok(None)`.
    fn accept(&self) -> io::Result<Option<Box<dyn TransportStream>>>;
}

/// Plain-TCP [`Transport`]: the production transport.
pub struct TcpTransport {
    listener: TcpListener,
    local_addr: SocketAddr,
}

impl TcpTransport {
    /// Binds `addr` with `backlog` pending-connection slots and switches
    /// the listener non-blocking, ready for poller registration.
    pub fn bind(addr: &str, backlog: i32) -> io::Result<TcpTransport> {
        let listener = TcpListener::bind(addr)?;
        // Re-issue listen(2) to apply the configured backlog: std's bind
        // already listened, but listen on a listening socket just
        // updates the queue depth.
        polling::listen_backlog(listener.as_raw_fd(), backlog)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        Ok(TcpTransport { listener, local_addr })
    }
}

impl Transport for TcpTransport {
    fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    fn listener_fd(&self) -> RawFd {
        self.listener.as_raw_fd()
    }

    fn accept(&self) -> io::Result<Option<Box<dyn TransportStream>>> {
        match self.listener.accept() {
            Ok((stream, _peer)) => {
                // A peer can die between readiness and these setsockopts;
                // that's its problem, not the accept loop's.
                if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                    return Ok(None);
                }
                Ok(Some(Box::new(TcpTransportStream { stream })))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// One accepted TCP connection.
struct TcpTransportStream {
    stream: TcpStream,
}

impl TransportStream for TcpTransportStream {
    fn fd(&self) -> RawFd {
        self.stream.as_raw_fd()
    }

    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.stream.read(buf)
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.stream.write(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_transport_accepts_nonblockingly() {
        let transport = TcpTransport::bind("127.0.0.1:0", 16).expect("bind");
        assert!(transport.accept().expect("empty backlog").is_none(), "no pending connection");
        let client = TcpStream::connect(transport.local_addr()).expect("connect");
        // The handshake may still be settling; poll briefly.
        let mut accepted = None;
        for _ in 0..100 {
            if let Some(s) = transport.accept().expect("accept") {
                accepted = Some(s);
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let mut server_side = accepted.expect("connection surfaced");
        drop(client);
        // Orderly close reads as Ok(0) once the FIN arrives.
        let mut buf = [0u8; 8];
        for _ in 0..100 {
            match server_side.read(&mut buf) {
                Ok(0) => return,
                Ok(_) => panic!("no bytes were sent"),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        panic!("peer close never surfaced");
    }
}
