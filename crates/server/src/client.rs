//! A small blocking `sd-wire` client: one connection, one frame in
//! flight. The loopback tests and `sd-serve selftest` drive the server
//! through it; it is deliberately simple rather than pooled or
//! pipelined.
//!
//! [`ClientConfig`] adds the operational knobs a caller outside a test
//! wants: a connect timeout, a per-frame I/O timeout, and optional
//! retry-on-[`Response::Overloaded`] that honors the server's
//! `retry_after_ms` hint (the server *tells* the client when capacity
//! should exist again; a client that retries sooner just feeds the
//! overload). Retries are off by default — a shed surfaces as
//! [`ServeError::Overloaded`] immediately — because tests assert on the
//! shed itself.

use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use bytes::Bytes;
use sd_core::GraphFingerprint;
use sd_graph::GraphUpdate;

use crate::proto::{
    server_scope, ErrorResponse, Frame, OverloadInfo, QueryRequest, QueryResponse, Request,
    Response, ServerStatsWire, StatsResponse, TenantStatsWire, UpdateRequest, UpdateResponse, Verb,
    WireError, WireQuery, FRAME_HEADER_BYTES,
};

/// Everything a client call can fail with.
#[derive(Debug)]
pub enum ServeError {
    /// The socket failed (connect, read, or write).
    Io(io::Error),
    /// The server's response frame did not decode.
    Wire(WireError),
    /// The server answered with a typed [`Verb::Error`] frame.
    Rejected(ErrorResponse),
    /// The server shed the request with a [`Verb::Overloaded`] frame
    /// (and retries, if configured, were exhausted).
    Overloaded(OverloadInfo),
    /// The server answered with a well-formed frame of the wrong kind
    /// for the request that was sent.
    UnexpectedResponse {
        /// The verb the response frame carried.
        got: Verb,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "socket error: {e}"),
            ServeError::Wire(e) => write!(f, "malformed response: {e}"),
            ServeError::Rejected(e) => write!(f, "server error ({:?}): {}", e.code, e.message),
            ServeError::Overloaded(o) => write!(
                f,
                "overloaded ({:?}): measured {} over limit {}, retry in {} ms",
                o.reason, o.measured, o.limit, o.retry_after_ms
            ),
            ServeError::UnexpectedResponse { got } => {
                write!(f, "unexpected response verb {:?}", got)
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> Self {
        ServeError::Wire(e)
    }
}

/// Connection and retry policy for a [`Client`]. The default is no
/// timeouts and no retries — what the assertion-heavy tests want.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClientConfig {
    /// Cap on establishing the TCP connection; `None` blocks.
    pub connect_timeout: Option<Duration>,
    /// Cap on each socket read/write while exchanging frames; `None`
    /// blocks. A request that trips this surfaces as
    /// [`ServeError::Io`] with kind `WouldBlock`/`TimedOut`.
    pub io_timeout: Option<Duration>,
    /// How many times a typed-request call re-sends after an
    /// [`Response::Overloaded`] shed, sleeping the server's
    /// `retry_after_ms` hint first. A connection-level shed closes the
    /// socket, so retries reconnect as needed. 0 disables retrying.
    pub retries: u32,
}

/// One blocking connection to an `sd-serve` instance.
pub struct Client {
    stream: TcpStream,
    addr: SocketAddr,
    config: ClientConfig,
}

impl Client {
    /// Connects with the default [`ClientConfig`] (no timeouts, no
    /// retries).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connects under `config`.
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> io::Result<Client> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address resolved"))?;
        let stream = Client::open(addr, &config)?;
        Ok(Client { stream, addr, config })
    }

    fn open(addr: SocketAddr, config: &ClientConfig) -> io::Result<TcpStream> {
        let stream = match config.connect_timeout {
            Some(timeout) => TcpStream::connect_timeout(&addr, timeout)?,
            None => TcpStream::connect(addr)?,
        };
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(config.io_timeout)?;
        stream.set_write_timeout(config.io_timeout)?;
        Ok(stream)
    }

    /// Drops the current socket and dials a fresh one to the same
    /// server. Typed-request retries use this after a connection-level
    /// shed (the server closed the shed connection behind the
    /// `Overloaded` frame).
    pub fn reconnect(&mut self) -> io::Result<()> {
        self.stream = Client::open(self.addr, &self.config)?;
        Ok(())
    }

    /// Writes raw bytes to the connection — the adversarial tests use
    /// this to send deliberately malformed frames.
    pub fn send_bytes(&mut self, bytes: &[u8]) -> io::Result<()> {
        io::Write::write_all(&mut self.stream, bytes)
    }

    /// Reads and decodes one response frame.
    pub fn read_response(&mut self) -> Result<Response, ServeError> {
        let frame = self.read_frame()?;
        Ok(Response::from_frame(&frame)?)
    }

    /// Reads one raw frame off the connection.
    pub fn read_frame(&mut self) -> Result<Frame, ServeError> {
        let mut header_bytes = [0u8; FRAME_HEADER_BYTES];
        io::Read::read_exact(&mut self.stream, &mut header_bytes)?;
        let header = Frame::decode_header(&header_bytes)?;
        let mut payload = vec![0u8; header.payload_len as usize];
        io::Read::read_exact(&mut self.stream, &mut payload)?;
        Ok(Frame::new(header.verb, header.fingerprint, Bytes::from(payload)))
    }

    /// Sends one request frame and reads the response frame — a single
    /// shot, no retrying (the raw-frame seam the adversarial tests use).
    pub fn roundtrip(&mut self, frame: &Frame) -> Result<Response, ServeError> {
        self.send_bytes(frame.encode().as_ref())?;
        self.read_response()
    }

    /// The typed-request path: roundtrip, retrying on `Overloaded` per
    /// [`ClientConfig::retries`], honoring each shed's `retry_after_ms`
    /// before re-sending (reconnecting if the shed closed the socket).
    fn request(
        &mut self,
        request: &Request,
        fingerprint: GraphFingerprint,
    ) -> Result<Response, ServeError> {
        let frame = request.to_frame(fingerprint);
        let mut attempts_left = self.config.retries;
        loop {
            let response = match self.roundtrip(&frame) {
                Ok(response) => response,
                // A connection-shed server writes the Overloaded frame
                // and closes; a retry that raced the close sees an I/O
                // error on the dead socket. Reconnect and try again if
                // we still may.
                Err(ServeError::Io(_)) if attempts_left < self.config.retries => {
                    self.reconnect()?;
                    self.roundtrip(&frame)?
                }
                Err(e) => return Err(e),
            };
            match response {
                Response::Error(e) => return Err(ServeError::Rejected(e)),
                Response::Overloaded(o) => {
                    if attempts_left == 0 {
                        return Err(ServeError::Overloaded(o));
                    }
                    attempts_left -= 1;
                    std::thread::sleep(Duration::from_millis(u64::from(o.retry_after_ms)));
                }
                other => return Ok(other),
            }
        }
    }

    /// Runs a batch of queries against the tenant routed by
    /// `fingerprint`. `deadline_ms` of 0 means no deadline.
    pub fn query(
        &mut self,
        fingerprint: GraphFingerprint,
        deadline_ms: u32,
        queries: Vec<WireQuery>,
    ) -> Result<QueryResponse, ServeError> {
        let request = Request::Query(QueryRequest { deadline_ms, queries });
        match self.request(&request, fingerprint)? {
            Response::Query(resp) => Ok(resp),
            other => Err(ServeError::UnexpectedResponse { got: other.to_frame(fingerprint).verb }),
        }
    }

    /// Applies a batch of edge updates to the tenant routed by
    /// `fingerprint` (one new epoch).
    pub fn update(
        &mut self,
        fingerprint: GraphFingerprint,
        updates: Vec<GraphUpdate>,
    ) -> Result<UpdateResponse, ServeError> {
        let request = Request::Update(UpdateRequest { updates });
        match self.request(&request, fingerprint)? {
            Response::Update(resp) => Ok(resp),
            other => Err(ServeError::UnexpectedResponse { got: other.to_frame(fingerprint).verb }),
        }
    }

    /// Fetches one tenant's live counters.
    pub fn tenant_stats(
        &mut self,
        fingerprint: GraphFingerprint,
    ) -> Result<TenantStatsWire, ServeError> {
        match self.request(&Request::Stats, fingerprint)? {
            Response::Stats(StatsResponse::Tenant(t)) => Ok(t),
            other => Err(ServeError::UnexpectedResponse { got: other.to_frame(fingerprint).verb }),
        }
    }

    /// Fetches the whole-server counters (the all-zero fingerprint
    /// scope).
    pub fn server_stats(&mut self) -> Result<ServerStatsWire, ServeError> {
        match self.request(&Request::Stats, server_scope())? {
            Response::Stats(StatsResponse::Server(s)) => Ok(s),
            other => {
                Err(ServeError::UnexpectedResponse { got: other.to_frame(server_scope()).verb })
            }
        }
    }

    /// Asks the server to begin graceful shutdown. The connection closes
    /// after the acknowledgement.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        match self.request(&Request::Shutdown, server_scope())? {
            Response::Shutdown => Ok(()),
            other => {
                Err(ServeError::UnexpectedResponse { got: other.to_frame(server_scope()).verb })
            }
        }
    }
}
