//! A small blocking `sd-wire` client: one connection, one frame in
//! flight. The loopback tests and `sd-serve selftest` drive the server
//! through it; it is deliberately simple rather than pooled or pipelined.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use bytes::Bytes;
use sd_core::GraphFingerprint;
use sd_graph::GraphUpdate;

use crate::proto::{
    server_scope, ErrorResponse, Frame, OverloadInfo, QueryRequest, QueryResponse, Request,
    Response, ServerStatsWire, StatsResponse, TenantStatsWire, UpdateRequest, UpdateResponse, Verb,
    WireError, WireQuery, FRAME_HEADER_BYTES,
};

/// Everything a client call can fail with.
#[derive(Debug)]
pub enum ServeError {
    /// The socket failed (connect, read, or write).
    Io(io::Error),
    /// The server's response frame did not decode.
    Wire(WireError),
    /// The server answered with a typed [`Verb::Error`] frame.
    Rejected(ErrorResponse),
    /// The server shed the request with a [`Verb::Overloaded`] frame.
    Overloaded(OverloadInfo),
    /// The server answered with a well-formed frame of the wrong kind
    /// for the request that was sent.
    UnexpectedResponse {
        /// The verb the response frame carried.
        got: Verb,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "socket error: {e}"),
            ServeError::Wire(e) => write!(f, "malformed response: {e}"),
            ServeError::Rejected(e) => write!(f, "server error ({:?}): {}", e.code, e.message),
            ServeError::Overloaded(o) => write!(
                f,
                "overloaded ({:?}): measured {} over limit {}, retry in {} ms",
                o.reason, o.measured, o.limit, o.retry_after_ms
            ),
            ServeError::UnexpectedResponse { got } => {
                write!(f, "unexpected response verb {:?}", got)
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> Self {
        ServeError::Wire(e)
    }
}

/// One blocking connection to an `sd-serve` instance.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream })
    }

    /// Writes raw bytes to the connection — the adversarial tests use
    /// this to send deliberately malformed frames.
    pub fn send_bytes(&mut self, bytes: &[u8]) -> io::Result<()> {
        io::Write::write_all(&mut self.stream, bytes)
    }

    /// Reads and decodes one response frame.
    pub fn read_response(&mut self) -> Result<Response, ServeError> {
        let frame = self.read_frame()?;
        Ok(Response::from_frame(&frame)?)
    }

    /// Reads one raw frame off the connection.
    pub fn read_frame(&mut self) -> Result<Frame, ServeError> {
        let mut header_bytes = [0u8; FRAME_HEADER_BYTES];
        io::Read::read_exact(&mut self.stream, &mut header_bytes)?;
        let header = Frame::decode_header(&header_bytes)?;
        let mut payload = vec![0u8; header.payload_len as usize];
        io::Read::read_exact(&mut self.stream, &mut payload)?;
        Ok(Frame::new(header.verb, header.fingerprint, Bytes::from(payload)))
    }

    /// Sends one request frame and reads the response frame.
    pub fn roundtrip(&mut self, frame: &Frame) -> Result<Response, ServeError> {
        self.send_bytes(frame.encode().as_ref())?;
        self.read_response()
    }

    fn request(
        &mut self,
        request: &Request,
        fingerprint: GraphFingerprint,
    ) -> Result<Response, ServeError> {
        match self.roundtrip(&request.to_frame(fingerprint))? {
            Response::Error(e) => Err(ServeError::Rejected(e)),
            Response::Overloaded(o) => Err(ServeError::Overloaded(o)),
            other => Ok(other),
        }
    }

    /// Runs a batch of queries against the tenant routed by
    /// `fingerprint`. `deadline_ms` of 0 means no deadline.
    pub fn query(
        &mut self,
        fingerprint: GraphFingerprint,
        deadline_ms: u32,
        queries: Vec<WireQuery>,
    ) -> Result<QueryResponse, ServeError> {
        let request = Request::Query(QueryRequest { deadline_ms, queries });
        match self.request(&request, fingerprint)? {
            Response::Query(resp) => Ok(resp),
            other => Err(ServeError::UnexpectedResponse { got: other.to_frame(fingerprint).verb }),
        }
    }

    /// Applies a batch of edge updates to the tenant routed by
    /// `fingerprint` (one new epoch).
    pub fn update(
        &mut self,
        fingerprint: GraphFingerprint,
        updates: Vec<GraphUpdate>,
    ) -> Result<UpdateResponse, ServeError> {
        let request = Request::Update(UpdateRequest { updates });
        match self.request(&request, fingerprint)? {
            Response::Update(resp) => Ok(resp),
            other => Err(ServeError::UnexpectedResponse { got: other.to_frame(fingerprint).verb }),
        }
    }

    /// Fetches one tenant's live counters.
    pub fn tenant_stats(
        &mut self,
        fingerprint: GraphFingerprint,
    ) -> Result<TenantStatsWire, ServeError> {
        match self.request(&Request::Stats, fingerprint)? {
            Response::Stats(StatsResponse::Tenant(t)) => Ok(t),
            other => Err(ServeError::UnexpectedResponse { got: other.to_frame(fingerprint).verb }),
        }
    }

    /// Fetches the whole-server counters (the all-zero fingerprint
    /// scope).
    pub fn server_stats(&mut self) -> Result<ServerStatsWire, ServeError> {
        match self.request(&Request::Stats, server_scope())? {
            Response::Stats(StatsResponse::Server(s)) => Ok(s),
            other => {
                Err(ServeError::UnexpectedResponse { got: other.to_frame(server_scope()).verb })
            }
        }
    }

    /// Asks the server to begin graceful shutdown. The connection closes
    /// after the acknowledgement.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        match self.request(&Request::Shutdown, server_scope())? {
            Response::Shutdown => Ok(()),
            other => {
                Err(ServeError::UnexpectedResponse { got: other.to_frame(server_scope()).verb })
            }
        }
    }
}
