//! Multi-tenant routing: one [`sd_core::SearchService`] per graph, keyed
//! by the [`GraphFingerprint`] it was registered under.
//!
//! The routing key is the fingerprint of the graph **at registration
//! time** and never changes: `apply_updates` batches drift the tenant's
//! *current* fingerprint (a new epoch is a new edge set), and re-keying
//! on every update would race every client that learned the key a moment
//! earlier. Clients route by the stable registration key and read the
//! current fingerprint back from the `stats` verb when they care.
//!
//! A frame whose fingerprint matches no registered tenant is answered
//! with a typed `UnknownTenant` error — the wrong-graph analogue of
//! [`sd_core::SearchError::FingerprintMismatch`] on the envelope path.

use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use sd_core::lock_order::{SERVER_INFLIGHT, SERVER_TENANTS};
use sd_core::{GraphFingerprint, SearchService};

use crate::batch::Batcher;
use crate::BatchLimits;

/// One registered tenant: its service plus the query-coalescing batcher
/// all connections routing to it share.
pub struct Tenant {
    /// The fingerprint this tenant is routed by (fixed at registration).
    pub key: GraphFingerprint,
    /// The tenant's search service.
    pub service: Arc<SearchService>,
    /// The tenant's shared query batcher.
    pub batcher: Arc<Batcher>,
}

/// Gauge of work currently executing, bucketed by the epoch it started
/// against. Graceful shutdown drains against this: it waits until every
/// epoch bucket — current *and* superseded — has emptied, so a query
/// pinned to an old snapshot is never abandoned mid-flight.
pub struct Inflight {
    by_epoch: Mutex<Vec<(u64, usize)>>,
}

impl Inflight {
    fn new() -> Self {
        Inflight { by_epoch: SERVER_INFLIGHT.mutex(Vec::new()) }
    }

    fn table(&self) -> &Mutex<Vec<(u64, usize)>> {
        &self.by_epoch
    }

    /// Records one unit of work starting against `epoch`; the guard ends
    /// it on drop (panic-safe).
    pub fn begin(self: &Arc<Self>, epoch: u64) -> InflightGuard {
        let mut table = self.table().lock(); // lock: server.inflight
        match table.iter_mut().find(|(e, _)| *e == epoch) {
            Some((_, count)) => *count += 1,
            None => table.push((epoch, 1)),
        }
        drop(table);
        InflightGuard { gauge: Arc::clone(self), epoch }
    }

    fn end(&self, epoch: u64) {
        let mut table = self.table().lock(); // lock: server.inflight
        if let Some(pos) = table.iter().position(|(e, _)| *e == epoch) {
            table[pos].1 -= 1;
            if table[pos].1 == 0 {
                table.swap_remove(pos);
            }
        }
    }

    /// Work units currently executing, summed over every epoch.
    pub fn total(&self) -> usize {
        self.table().lock().iter().map(|(_, c)| c).sum() // lock: server.inflight
    }

    /// `(epoch, executing)` pairs for every epoch with live work, oldest
    /// epoch first.
    pub fn snapshot(&self) -> Vec<(u64, usize)> {
        let mut pairs = self.table().lock().clone(); // lock: server.inflight
        pairs.sort_unstable();
        pairs
    }
}

/// RAII marker for one in-flight work unit; dropping it (normally or
/// during unwind) retires the unit from the gauge.
pub struct InflightGuard {
    gauge: Arc<Inflight>,
    epoch: u64,
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.gauge.end(self.epoch);
    }
}

/// The tenant table: registration, fingerprint routing, and the shared
/// in-flight gauge draining consults.
pub struct TenantRegistry {
    tenants: RwLock<Vec<Arc<Tenant>>>,
    inflight: Arc<Inflight>,
    limits: BatchLimits,
}

impl TenantRegistry {
    /// An empty registry whose tenants batch under `limits`.
    pub fn new(limits: BatchLimits) -> Self {
        TenantRegistry {
            tenants: SERVER_TENANTS.rwlock(Vec::new()),
            inflight: Arc::new(Inflight::new()),
            limits,
        }
    }

    /// Registers `service` under its **current** fingerprint and returns
    /// that routing key. Fails if the key is already taken — two tenants
    /// under one fingerprint would make routing ambiguous.
    pub fn register(
        &self,
        service: Arc<SearchService>,
    ) -> Result<GraphFingerprint, GraphFingerprint> {
        let key = service.fingerprint();
        let tenant = Arc::new(Tenant {
            key,
            service,
            batcher: Arc::new(Batcher::new(self.limits, Arc::clone(&self.inflight))),
        });
        let mut tenants = self.tenants.write(); // lock: server.tenants
        if tenants.iter().any(|t| t.key == key) {
            return Err(key);
        }
        tenants.push(tenant);
        Ok(key)
    }

    /// The tenant routed by `key`, if registered.
    pub fn lookup(&self, key: &GraphFingerprint) -> Option<Arc<Tenant>> {
        let tenants = self.tenants.read(); // lock: server.tenants
        tenants.iter().find(|t| t.key == *key).cloned()
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.tenants.read().len() // lock: server.tenants
    }

    /// Whether no tenant is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of every tenant, in registration order.
    pub fn tenants(&self) -> Vec<Arc<Tenant>> {
        self.tenants.read().clone() // lock: server.tenants
    }

    /// Runs `visit` over every tenant **while holding the routing-table
    /// read lock** — the stats verb uses this so one response sees one
    /// consistent tenant set. Each visit typically pins the tenant's
    /// epoch pointer inside, which is the documented
    /// `server.tenants → epoch.ptr` hierarchy edge.
    pub fn for_each(&self, mut visit: impl FnMut(&Tenant)) {
        let tenants = self.tenants.read(); // lock: server.tenants
        for tenant in tenants.iter() {
            visit(tenant);
        }
    }

    /// The gauge of work currently executing across all tenants.
    pub fn inflight(&self) -> &Arc<Inflight> {
        &self.inflight
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_core::paper_figure1_graph;

    fn figure1_service() -> Arc<SearchService> {
        let (graph, _, _) = paper_figure1_graph();
        Arc::new(SearchService::new(graph))
    }

    fn registry() -> TenantRegistry {
        TenantRegistry::new(BatchLimits::default())
    }

    #[test]
    fn register_and_lookup_round_trip() {
        let reg = registry();
        assert!(reg.is_empty());
        let svc = figure1_service();
        let key = reg.register(svc.clone()).expect("first registration");
        assert_eq!(key, svc.fingerprint());
        assert_eq!(reg.len(), 1);
        let tenant = reg.lookup(&key).expect("registered");
        assert_eq!(tenant.key, key);
        assert!(reg.lookup(&GraphFingerprint { n: 1, m: 2, edge_checksum: 3 }).is_none());
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let reg = registry();
        let svc = figure1_service();
        let key = reg.register(svc.clone()).expect("first");
        let twin = figure1_service();
        assert_eq!(reg.register(twin), Err(key), "same fingerprint, ambiguous route");
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn inflight_gauge_tracks_epochs_independently() {
        let gauge = Arc::new(Inflight::new());
        let a = gauge.begin(0);
        let b = gauge.begin(0);
        let c = gauge.begin(3);
        assert_eq!(gauge.total(), 3);
        assert_eq!(gauge.snapshot(), vec![(0, 2), (3, 1)]);
        drop(b);
        assert_eq!(gauge.snapshot(), vec![(0, 1), (3, 1)]);
        drop(a);
        drop(c);
        assert_eq!(gauge.total(), 0);
        assert!(gauge.snapshot().is_empty());
    }

    #[test]
    fn inflight_guard_survives_unwind() {
        let gauge = Arc::new(Inflight::new());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = gauge.begin(7);
            panic!("query died");
        }));
        assert!(result.is_err());
        assert_eq!(gauge.total(), 0, "guard retired the unit during unwind");
    }
}
