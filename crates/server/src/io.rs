//! The readiness loops: a fixed set of `sd-io-{i}` threads multiplexing
//! every client connection over one [`polling::Poller`] each.
//!
//! ## Shape
//!
//! Each I/O thread owns a poller, a [`Waker`], and a private table of
//! the [`Conn`]s assigned to it — the table is thread-local state, never
//! locked. Thread 0 additionally owns the [`Transport`] and accepts;
//! accepted connections are handed round-robin to their owning thread
//! through that thread's [`IoHandle`] — a small mutex-protected command
//! queue (`server.io` in the lock hierarchy) plus the waker. Commands
//! are how *everything* external reaches a loop: adoption, query/update
//! completions, drain control. The queue lock is only ever taken with
//! an otherwise-empty held set (push, drop, wake), so it cannot deadlock
//! against anything.
//!
//! ## No blocking, ever
//!
//! An I/O thread never blocks outside `Poller::wait`: reads and writes
//! stop at `WouldBlock` (the [`Conn`] state machine resumes them on the
//! next readiness event), and query work is dispatched **asynchronously**
//! onto the tenant's batcher — the reply comes back as an
//! [`IoCmd::Complete`] posted by the batch leader's completion callback
//! from a worker-pool thread. Updates, which run the epoch publish
//! machinery and may block on the updater lock, get a short-lived
//! dedicated thread for the same reason. The worker pool itself is
//! never borrowed by I/O: with a one-thread pool, a blocking I/O thread
//! inside it would deadlock the very batches it is waiting on.
//!
//! ## Disconnect cancellation
//!
//! While a frame is dispatched, the connection's interest narrows to
//! peer-hangup only. If the poller then reports the peer gone, the loop
//! flips the frame's [`CancelToken`] and closes the connection: queries
//! still parked (or already coalesced into a batch) are skipped at
//! their batch-slot boundary and counted `dropped_disconnected` /
//! `cancelled` instead of burning pool time for a reader that no longer
//! exists. The late `Complete` that the batcher still posts finds the
//! connection gone and is discarded.

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::Mutex;
use polling::{Event, Events, Interest, Poller, Waker};
use sd_core::lock_order::SERVER_IO;
use sd_core::{CancelToken, SearchError};

use crate::batch::BatchReply;
use crate::conn::{Conn, ConnEvent};
use crate::proto::{
    server_scope, ErrorCode, ErrorResponse, Frame, QueryOutcome, QueryRequest, QueryResponse,
    Request, Response, UpdateResponse,
};
use crate::server::ServerShared;
use crate::transport::{Transport, TransportStream};

/// Poller key of a loop's waker.
const WAKER_KEY: u64 = u64::MAX;
/// Poller key of the listener (thread 0 only).
pub(crate) const LISTENER_KEY: u64 = u64::MAX - 1;

/// A command posted into an I/O loop from outside it.
pub(crate) enum IoCmd {
    /// Take ownership of an accepted connection under the given id.
    Adopt(Box<dyn TransportStream>, u64),
    /// A dispatched frame's response is ready: write it.
    Complete {
        /// The connection the response belongs to.
        conn: u64,
        /// The encoded response frame.
        bytes: Bytes,
        /// Close once flushed (the `Shutdown` ack).
        close_after: bool,
    },
    /// Draining began: stop accepting, close idle connections.
    Drain,
    /// The grace period expired: close everything, answered or not.
    ForceCloseAll,
    /// Exit the loop (sent after the last connection is gone).
    Stop,
}

/// One I/O thread's inbox: the only way other threads talk to it.
pub(crate) struct IoHandle {
    queue: Mutex<Vec<IoCmd>>,
    waker: Waker,
}

impl IoHandle {
    pub(crate) fn new(poller: &Poller) -> std::io::Result<IoHandle> {
        Ok(IoHandle { queue: SERVER_IO.mutex(Vec::new()), waker: Waker::new(poller, WAKER_KEY)? })
    }

    /// Posts `cmd` and wakes the loop. Safe from any thread; takes only
    /// the `server.io` leaf lock.
    pub(crate) fn post(&self, cmd: IoCmd) {
        self.queue.lock().push(cmd); // lock: server.io
        let _ = self.waker.wake();
    }

    fn take_all(&self) -> Vec<IoCmd> {
        std::mem::take(&mut *self.queue.lock()) // lock: server.io
    }
}

/// One connection as the loop tracks it: the state machine plus the
/// interest currently armed in the poller.
pub(crate) struct ConnEntry {
    conn: Conn,
    armed: Interest,
}

/// The per-thread loop state. Constructed by [`crate::Server`], consumed
/// by [`IoLoop::run`] on the `sd-io-{index}` thread.
pub(crate) struct IoLoop {
    pub(crate) index: usize,
    pub(crate) poller: Poller,
    pub(crate) handle: Arc<IoHandle>,
    pub(crate) shared: Arc<ServerShared>,
    /// Thread 0 owns the transport; everyone else has `None`.
    pub(crate) transport: Option<Box<dyn Transport>>,
    pub(crate) conns: HashMap<u64, ConnEntry>,
}

impl IoLoop {
    pub(crate) fn run(mut self) {
        let mut events = Events::with_capacity(256);
        let mut stopping = false;
        loop {
            if self.poller.wait(&mut events, None).is_err() {
                return; // the epoll fd itself failed; nothing to salvage
            }
            let mut accept_ready = false;
            let mut ready: Vec<Event> = Vec::new();
            for event in events.iter() {
                match event.key() {
                    WAKER_KEY => self.handle.waker.drain(),
                    LISTENER_KEY => accept_ready = true,
                    _ => ready.push(event),
                }
            }
            for cmd in self.handle.take_all() {
                match cmd {
                    IoCmd::Adopt(stream, id) => self.adopt(stream, id),
                    IoCmd::Complete { conn, bytes, close_after } => {
                        self.complete(conn, bytes, close_after);
                    }
                    IoCmd::Drain => self.begin_drain(),
                    IoCmd::ForceCloseAll => {
                        let keys: Vec<u64> = self.conns.keys().copied().collect();
                        for key in keys {
                            if let Some(entry) = self.conns.get_mut(&key) {
                                entry.conn.cancel_inflight();
                            }
                            self.close(key);
                        }
                    }
                    IoCmd::Stop => stopping = true,
                }
            }
            for event in ready {
                self.ready(event.key(), event);
            }
            if accept_ready {
                self.accept_all();
            }
            if stopping && self.conns.is_empty() {
                return;
            }
        }
    }

    /// Drains the accept backlog (thread 0 only; level-triggered, so an
    /// unfinished backlog re-reports next wait).
    fn accept_all(&mut self) {
        loop {
            let accepted = match &self.transport {
                Some(transport) => transport.accept(),
                None => return,
            };
            match accepted {
                Ok(Some(stream)) => self.admit(stream),
                Ok(None) => return,
                Err(_) => return,
            }
        }
    }

    /// Admission control at the accept edge, mirroring the blocking
    /// server: count the accept, shed with a typed `Overloaded` frame
    /// when over the connection cap, otherwise claim the gauge slot and
    /// hand the stream to its owning loop.
    fn admit(&mut self, stream: Box<dyn TransportStream>) {
        let shared = Arc::clone(&self.shared);
        let id = shared.accepted_connections.fetch_add(1, Ordering::Relaxed) + 1;
        if shared.draining.load(Ordering::SeqCst) {
            return; // refuse: dropping the stream closes it
        }
        let active = shared.active_connections.load(Ordering::SeqCst);
        if let Err(info) = shared.admission.admit_connection(active as usize) {
            shared.shed_overload.fetch_add(1, Ordering::Relaxed);
            let frame = Response::Overloaded(info).to_frame(server_scope()).encode();
            write_best_effort(stream, frame);
            return;
        }
        // Claim the gauge at accept (not adoption) so a burst cannot
        // slip past the cap while handoffs are in flight.
        shared.active_connections.fetch_add(1, Ordering::SeqCst);
        let target = (id as usize) % shared.io.len();
        if target == self.index {
            self.adopt(stream, id);
        } else {
            shared.io[target].post(IoCmd::Adopt(stream, id));
        }
    }

    /// Registers an accepted connection with this loop's poller.
    fn adopt(&mut self, stream: Box<dyn TransportStream>, id: u64) {
        if self.shared.draining.load(Ordering::SeqCst) {
            self.shared.active_connections.fetch_sub(1, Ordering::SeqCst);
            return; // raced with drain; refuse like the acceptor would
        }
        let conn = Conn::new(stream);
        let interest = conn.wanted_interest();
        if self.poller.add(conn.fd(), id, interest).is_err() {
            self.shared.active_connections.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        self.conns.insert(id, ConnEntry { conn, armed: interest });
    }

    /// One readiness event for one connection.
    fn ready(&mut self, key: u64, event: Event) {
        if !self.conns.contains_key(&key) {
            return; // closed earlier this round
        }
        if event.error() {
            if let Some(entry) = self.conns.get_mut(&key) {
                entry.conn.cancel_inflight();
            }
            self.close(key);
            return;
        }
        if event.readable() {
            let Some(entry) = self.conns.get_mut(&key) else { return };
            let ev = entry.conn.on_readable();
            self.step(key, ev);
        } else if event.writable() {
            let Some(entry) = self.conns.get_mut(&key) else { return };
            let ev = entry.conn.on_writable();
            self.step(key, ev);
        } else if event.hangup() {
            // Nothing readable, peer gone: the client abandoned whatever
            // is in flight. Cancel it and drop the connection — the
            // response (if any still materializes) has no reader.
            if let Some(entry) = self.conns.get_mut(&key) {
                entry.conn.cancel_inflight();
            }
            self.close(key);
            return;
        }
        self.rearm(key);
    }

    /// Applies a state-machine result.
    fn step(&mut self, key: u64, ev: ConnEvent) {
        match ev {
            ConnEvent::Frame(frame) => self.dispatch(key, frame),
            ConnEvent::Continue => {}
            // Between frames is the drain point: an answered connection
            // closes instead of reading the next request.
            ConnEvent::Idle => {
                if self.shared.draining.load(Ordering::SeqCst) {
                    self.close(key);
                }
            }
            ConnEvent::Close => self.close(key),
        }
    }

    /// Syncs the poller with what the state machine wants armed.
    fn rearm(&mut self, key: u64) {
        let Some(entry) = self.conns.get_mut(&key) else { return };
        let wanted = entry.conn.wanted_interest();
        if wanted == entry.armed {
            return;
        }
        if self.poller.modify(entry.conn.fd(), key, wanted).is_ok() {
            entry.armed = wanted;
        } else {
            entry.conn.cancel_inflight();
            self.close(key);
        }
    }

    fn close(&mut self, key: u64) {
        if let Some(entry) = self.conns.remove(&key) {
            let _ = self.poller.delete(entry.conn.fd());
            self.shared.active_connections.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// A dispatched frame's response arrived from the pool (or an update
    /// thread). A connection that disconnected meanwhile is simply gone:
    /// the response is discarded unread, like the blocking server's
    /// failed `write_all`.
    fn complete(&mut self, key: u64, bytes: Bytes, close_after: bool) {
        self.shared.requests_served.fetch_add(1, Ordering::Relaxed);
        let Some(entry) = self.conns.get_mut(&key) else { return };
        let ev = entry.conn.start_write(bytes, close_after);
        self.step(key, ev);
        self.rearm(key);
    }

    /// Synchronous response path: everything answerable on the I/O
    /// thread itself (stats, typed errors, sheds, the shutdown ack).
    fn respond(
        &mut self,
        key: u64,
        response: Response,
        reply_fp: sd_core::GraphFingerprint,
        close_after: bool,
    ) {
        self.shared.requests_served.fetch_add(1, Ordering::Relaxed);
        let bytes = response.to_frame(reply_fp).encode();
        let Some(entry) = self.conns.get_mut(&key) else { return };
        let ev = entry.conn.start_write(bytes, close_after);
        self.step(key, ev);
        self.rearm(key);
    }

    /// Drain onset for this loop: refuse future connects (thread 0 drops
    /// the transport) and close connections idle between frames.
    /// Mid-frame connections finish, are answered, and close at their
    /// write-complete (`ConnEvent::Idle`).
    fn begin_drain(&mut self) {
        if let Some(transport) = self.transport.take() {
            let _ = self.poller.delete(transport.listener_fd());
            // Dropping the listener closes it: late connects are refused
            // by the kernel, not parked in a backlog nobody will serve.
        }
        let idle: Vec<u64> =
            self.conns.iter().filter(|(_, e)| e.conn.is_idle()).map(|(k, _)| *k).collect();
        for key in idle {
            self.close(key);
        }
    }

    /// Handles one fully received frame, mirroring the blocking server's
    /// dispatch: a malformed payload is a typed error on a *surviving*
    /// connection (the stream is length-framed, still in sync).
    fn dispatch(&mut self, key: u64, frame: Frame) {
        let request = match Request::from_frame(&frame) {
            Ok(request) => request,
            Err(err) => {
                let resp = Response::Error(ErrorResponse {
                    code: ErrorCode::BadRequest,
                    message: err.to_string(),
                });
                self.respond(key, resp, frame.fingerprint, false);
                return;
            }
        };
        match request {
            Request::Query(query) => self.dispatch_query(key, &frame, query),
            Request::Update(update) => self.dispatch_update(key, &frame, update.updates),
            Request::Stats => {
                let resp = crate::server::handle_stats(&self.shared, &frame);
                self.respond(key, resp, frame.fingerprint, false);
            }
            Request::Shutdown => {
                crate::server::trigger_drain(&self.shared);
                self.respond(key, Response::Shutdown, frame.fingerprint, true);
            }
        }
    }

    /// The asynchronous query path: admission, per-slot spec resolution,
    /// then a batcher submission whose completion callback posts the
    /// encoded response back to this loop. The connection carries the
    /// frame's [`CancelToken`] so a disconnect observed while the batch
    /// is pending cancels the queries instead of orphaning them.
    fn dispatch_query(&mut self, key: u64, frame: &Frame, query: QueryRequest) {
        let shared = Arc::clone(&self.shared);
        let Some(tenant) = shared.registry.lookup(&frame.fingerprint) else {
            self.respond(key, unknown_tenant(frame), frame.fingerprint, false);
            return;
        };
        if let Err(info) = shared.admission.admit_query(tenant.service.pool().queued_jobs()) {
            shared.shed_overload.fetch_add(1, Ordering::Relaxed);
            self.respond(key, Response::Overloaded(info), frame.fingerprint, false);
            return;
        }
        let deadline = if query.deadline_ms == 0 {
            None
        } else {
            Instant::now().checked_add(Duration::from_millis(u64::from(query.deadline_ms)))
        };
        // Resolve specs per query: an invalid one fails alone (its
        // outcome slot), never the frame.
        let mut outcomes: Vec<Option<QueryOutcome>> = Vec::with_capacity(query.queries.len());
        let mut specs = Vec::new();
        let mut spec_slots = Vec::new();
        for (i, wire_query) in query.queries.iter().enumerate() {
            match wire_query.to_spec() {
                Ok(spec) => {
                    outcomes.push(None);
                    specs.push(spec);
                    spec_slots.push(i);
                }
                Err(err) => outcomes.push(Some(QueryOutcome::Failed {
                    code: error_code_of(&err),
                    message: err.to_string(),
                })),
            }
        }
        if specs.is_empty() {
            // Nothing to batch (every spec was invalid, or the frame was
            // empty): answer inline.
            let resp = Response::Query(QueryResponse {
                epoch: tenant.service.epoch(),
                outcomes: seal_outcomes(outcomes),
            });
            self.respond(key, resp, frame.fingerprint, false);
            return;
        }
        let token = CancelToken::new();
        if let Some(entry) = self.conns.get_mut(&key) {
            entry.conn.set_cancel(token.clone());
        }
        let reply_fp = frame.fingerprint;
        let service = Arc::clone(&tenant.service);
        let io = Arc::clone(&self.handle);
        let done = move |replies: Vec<BatchReply>| {
            let mut outcomes = outcomes;
            let mut epoch = None;
            for (slot, reply) in spec_slots.into_iter().zip(replies) {
                outcomes[slot] = Some(match reply {
                    BatchReply::Answered { epoch: e, result } => {
                        epoch = epoch.or(Some(e));
                        QueryOutcome::Answered(result.entries)
                    }
                    BatchReply::Failed(err) => {
                        QueryOutcome::Failed { code: error_code_of(&err), message: err.to_string() }
                    }
                    BatchReply::Expired => QueryOutcome::Expired,
                    // The peer is gone; nobody will read this response.
                    // Any outcome works — Failed keeps the slot
                    // accounted for.
                    BatchReply::Dropped => QueryOutcome::Failed {
                        code: ErrorCode::Internal,
                        message: "connection closed before the query ran".into(),
                    },
                });
            }
            let response = Response::Query(QueryResponse {
                epoch: epoch.unwrap_or_else(|| service.epoch()),
                outcomes: seal_outcomes(outcomes),
            });
            io.post(IoCmd::Complete {
                conn: key,
                bytes: response.to_frame(reply_fp).encode(),
                close_after: false,
            });
        };
        match tenant.batcher.submit_many_async(&tenant.service, specs, deadline, Some(token), done)
        {
            Ok(()) => {}
            Err(full) => {
                shared.shed_overload.fetch_add(1, Ordering::Relaxed);
                let resp = Response::Overloaded(shared.admission.queue_full(full));
                self.respond(key, resp, frame.fingerprint, false);
            }
        }
    }

    /// Updates run the epoch-publish machinery, which serializes on the
    /// updater lock and may block — so each gets a short-lived dedicated
    /// thread, never an I/O thread and never the worker pool (whose
    /// threads the publish path itself may need).
    fn dispatch_update(&mut self, key: u64, frame: &Frame, updates: Vec<sd_graph::GraphUpdate>) {
        let shared = Arc::clone(&self.shared);
        let Some(tenant) = shared.registry.lookup(&frame.fingerprint) else {
            self.respond(key, unknown_tenant(frame), frame.fingerprint, false);
            return;
        };
        let reply_fp = frame.fingerprint;
        let io = Arc::clone(&self.handle);
        let spawned = std::thread::Builder::new().name(format!("sd-upd-{key}")).spawn(move || {
            let _guard = shared.registry.inflight().begin(tenant.service.epoch());
            let response = match tenant.service.apply_updates(&updates) {
                Ok(stats) => Response::Update(UpdateResponse {
                    epoch: stats.epoch,
                    applied: stats.applied as u64,
                    rejected: stats.rejected as u64,
                    tsd_repairs: stats.tsd_repairs as u64,
                    tsd_carried: stats.tsd_carried,
                    n: stats.n as u64,
                    m: stats.m as u64,
                }),
                Err(err) => Response::Error(ErrorResponse {
                    code: error_code_of(&err),
                    message: err.to_string(),
                }),
            };
            io.post(IoCmd::Complete {
                conn: key,
                bytes: response.to_frame(reply_fp).encode(),
                close_after: false,
            });
        });
        if spawned.is_err() {
            let resp = Response::Error(ErrorResponse {
                code: ErrorCode::Internal,
                message: "could not spawn an update thread".into(),
            });
            self.respond(key, resp, frame.fingerprint, false);
        }
    }
}

/// Flushes a frame to a connection that is being refused, without ever
/// parking the accept path: a handful of short retries around
/// `WouldBlock` (a fresh socket's send buffer is empty, so the first
/// write all but always takes everything), then give up and close.
fn write_best_effort(mut stream: Box<dyn TransportStream>, bytes: Bytes) {
    let mut written = 0usize;
    let mut retries = 0u32;
    while written < bytes.len() && retries < 20 {
        match stream.write(&bytes.as_ref()[written..]) {
            Ok(0) => return,
            Ok(n) => written += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                retries += 1;
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

fn seal_outcomes(outcomes: Vec<Option<QueryOutcome>>) -> Vec<QueryOutcome> {
    outcomes
        .into_iter()
        .map(|o| {
            o.unwrap_or(QueryOutcome::Failed {
                code: ErrorCode::Internal,
                message: "query slot left unfilled".into(),
            })
        })
        .collect()
}

pub(crate) fn unknown_tenant(frame: &Frame) -> Response {
    let fp = frame.fingerprint;
    Response::Error(ErrorResponse {
        code: ErrorCode::UnknownTenant,
        message: format!(
            "no tenant registered under fingerprint (n={}, m={}, checksum={:#018x})",
            fp.n, fp.m, fp.edge_checksum
        ),
    })
}

pub(crate) fn error_code_of(err: &SearchError) -> ErrorCode {
    match err {
        SearchError::Internal { .. } => ErrorCode::Internal,
        _ => ErrorCode::BadRequest,
    }
}
