//! Disconnect-cancellation end-to-end: a client that hangs up while its
//! query is still queued must cancel that query, not burn a batch slot
//! computing an answer nobody will read. The poller observes the hangup,
//! flips the connection's [`sd_server::CancelToken`], and the batch
//! leader skips the slot — both `dropped_disconnected` (the cause) and
//! `cancelled` (the mechanism) move.

use std::sync::Arc;
use std::time::{Duration, Instant};

use sd_core::{paper_figure1_graph, SearchService, WorkerPool};
use sd_server::{
    BatchLimits, Client, QueryRequest, Request, Server, ServerConfig, TenantRegistry, WireQuery,
};

/// Spins until `probe` returns true or ~5 s elapse.
fn wait_for(what: &str, mut probe: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !probe() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn mid_query_disconnect_cancels_the_batched_query() {
    // A 1-thread private pool the test parks: the batch leader is a pool
    // job, so the submitted query is pinned in the accumulator — queued,
    // not yet running — for as long as the worker stays parked.
    let (graph, _, _) = paper_figure1_graph();
    let service = Arc::new(SearchService::with_pool(graph, Arc::new(WorkerPool::new(1))));
    let registry = Arc::new(TenantRegistry::new(BatchLimits {
        window: Duration::ZERO,
        ..BatchLimits::default()
    }));
    let key = registry.register(service.clone()).expect("register");
    let tenant = registry.lookup(&key).expect("registered above");
    let server = Server::start(ServerConfig::new().addr("127.0.0.1:0"), registry).expect("bind");

    let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
    service.pool().submit(move || {
        let _ = release_rx.recv();
    });

    // Send a query frame raw — and never read the response.
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let frame =
        Request::Query(QueryRequest { deadline_ms: 0, queries: vec![WireQuery::new(3, 2)] })
            .to_frame(key);
    client.send_bytes(frame.encode().as_ref()).expect("send query");
    wait_for("the query to reach the accumulator", || tenant.batcher.pending() == 1);

    // Hang up while the query is still queued behind the parked worker.
    drop(client);
    wait_for("the poller to observe the hangup", || server.stats().active_connections == 0);

    // Release the worker: the leader drains the batch and finds the
    // slot's token already cancelled.
    release_tx.send(()).expect("release");
    wait_for("the cancelled slot to be dropped", || {
        let stats = tenant.batcher.stats();
        stats.dropped_disconnected == 1 && stats.cancelled == 1
    });
    assert_eq!(service.queries_served(), 0, "the abandoned query never reached an engine");

    // The server-scope wire stats surface both counters too.
    let stats = server.stats();
    assert_eq!(stats.dropped_disconnected, 1);
    assert_eq!(stats.cancelled, 1);

    let report = server.shutdown();
    assert!(report.within_grace, "{report:?}");
}
