//! Adversarial decode suite for the `sd-wire` protocol: every malformed
//! shape — truncation at every offset, wrong magic, future version,
//! oversized length prefix, unknown verbs, trailing bytes, hostile
//! payloads — must fail with a typed [`WireError`], and a live server fed
//! the same garbage must answer a typed error frame, never hang or die.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use sd_core::{paper_figure1_graph, SearchService};
use sd_graph::GraphUpdate;
use sd_server::{
    server_scope, BatchLimits, Client, ErrorCode, Frame, QueryRequest, Request, Response, Server,
    ServerConfig, TenantRegistry, UpdateRequest, Verb, WireError, WireQuery, FRAME_HEADER_BYTES,
    MAX_FRAME_PAYLOAD,
};

fn sample_frame_bytes() -> Vec<u8> {
    let request = Request::Query(QueryRequest {
        deadline_ms: 125,
        queries: vec![WireQuery::new(3, 4), WireQuery::new(4, 2)],
    });
    let fp = sd_core::GraphFingerprint { n: 17, m: 42, edge_checksum: 0x1234_5678 };
    request.to_frame(fp).encode().as_ref().to_vec()
}

// ---------------------------------------------------------------------------
// Pure decode: headers

#[test]
fn truncation_at_every_offset_is_typed() {
    let bytes = sample_frame_bytes();
    assert!(bytes.len() > FRAME_HEADER_BYTES, "sample has a payload");
    for len in 0..bytes.len() {
        let err = Frame::decode(Bytes::from(&bytes[..len])).expect_err("truncated input");
        assert_eq!(err, WireError::Truncated, "prefix of {len} bytes");
    }
    // And the full frame still decodes — the loop above really was about
    // truncation, not some other defect.
    assert!(Frame::decode(Bytes::from(bytes)).is_ok());
}

#[test]
fn header_only_truncation_is_typed() {
    let bytes = sample_frame_bytes();
    for len in 0..FRAME_HEADER_BYTES {
        assert_eq!(Frame::decode_header(&bytes[..len]), Err(WireError::Truncated));
    }
}

#[test]
fn bad_magic_is_rejected() {
    let mut bytes = sample_frame_bytes();
    bytes[0] ^= 0xFF;
    assert_eq!(Frame::decode_header(&bytes), Err(WireError::BadMagic));
    // All-zero header: also bad magic, not a panic.
    assert_eq!(Frame::decode_header(&[0u8; FRAME_HEADER_BYTES]), Err(WireError::BadMagic));
}

#[test]
fn future_version_is_rejected() {
    let mut bytes = sample_frame_bytes();
    bytes[4..6].copy_from_slice(&7u16.to_le_bytes());
    assert_eq!(Frame::decode_header(&bytes), Err(WireError::UnsupportedVersion { version: 7 }));
}

#[test]
fn every_unknown_verb_tag_is_rejected() {
    let known = [0x01u8, 0x02, 0x03, 0x0F, 0x81, 0x82, 0x83, 0x8F, 0xE0, 0xE1];
    let mut bytes = sample_frame_bytes();
    for tag in 0..=255u8 {
        bytes[6] = tag;
        let header = Frame::decode_header(&bytes);
        if known.contains(&tag) {
            assert!(header.is_ok(), "tag {tag:#04x} is a real verb");
        } else {
            assert_eq!(header, Err(WireError::UnknownVerb { verb: tag }), "tag {tag:#04x}");
        }
    }
}

#[test]
fn oversized_length_prefixes_are_rejected_before_allocation() {
    let mut bytes = sample_frame_bytes();
    for len in [MAX_FRAME_PAYLOAD + 1, u64::MAX / 2, u64::MAX] {
        bytes[8..16].copy_from_slice(&len.to_le_bytes());
        assert_eq!(Frame::decode_header(&bytes), Err(WireError::OversizedPayload { len }));
    }
    // Exactly at the cap the *header* is fine (the payload then has to
    // actually be present).
    bytes[8..16].copy_from_slice(&MAX_FRAME_PAYLOAD.to_le_bytes());
    assert!(Frame::decode_header(&bytes).is_ok());
}

#[test]
fn trailing_bytes_are_rejected() {
    let mut bytes = sample_frame_bytes();
    bytes.push(0);
    assert_eq!(Frame::decode(Bytes::from(bytes)), Err(WireError::TrailingBytes));
}

// ---------------------------------------------------------------------------
// Pure decode: hostile payloads behind a well-formed header

fn decode_request(verb: Verb, payload: Vec<u8>) -> Result<Request, WireError> {
    Request::from_frame(&Frame::new(verb, server_scope(), Bytes::from(payload)))
}

fn decode_response(verb: Verb, payload: Vec<u8>) -> Result<Response, WireError> {
    Response::from_frame(&Frame::new(verb, server_scope(), Bytes::from(payload)))
}

#[test]
fn query_payload_with_unknown_engine_tag_is_rejected() {
    let mut payload = QueryRequest { deadline_ms: 0, queries: vec![WireQuery::new(3, 4)] }
        .encode_payload()
        .as_ref()
        .to_vec();
    *payload.last_mut().unwrap() = 0x99; // engine tag is the query's last byte
    assert_eq!(
        decode_request(Verb::Query, payload),
        Err(WireError::InvalidPayload { what: "unknown engine tag" })
    );
}

#[test]
fn query_payload_with_lying_count_is_rejected() {
    let mut payload = QueryRequest { deadline_ms: 0, queries: vec![WireQuery::new(3, 4)] }
        .encode_payload()
        .as_ref()
        .to_vec();
    payload[4..6].copy_from_slice(&500u16.to_le_bytes()); // claims 500 queries, carries 1
    assert_eq!(decode_request(Verb::Query, payload), Err(WireError::Truncated));
}

#[test]
fn update_payload_with_unknown_op_is_rejected() {
    let mut payload = UpdateRequest { updates: vec![GraphUpdate::Insert { u: 1, v: 2 }] }
        .encode_payload()
        .as_ref()
        .to_vec();
    payload[4] = 9; // op byte of the first update
    assert_eq!(
        decode_request(Verb::Update, payload),
        Err(WireError::InvalidPayload { what: "unknown update op" })
    );
}

#[test]
fn empty_verbs_reject_smuggled_payload_bytes() {
    assert_eq!(decode_request(Verb::Stats, vec![1, 2, 3]), Err(WireError::TrailingBytes));
    assert_eq!(decode_request(Verb::Shutdown, vec![0]), Err(WireError::TrailingBytes));
    assert_eq!(decode_response(Verb::ShutdownOk, vec![0]), Err(WireError::TrailingBytes));
}

#[test]
fn response_payload_corruptions_are_typed() {
    // Unknown outcome status byte inside a QueryOk.
    let mut payload = Vec::new();
    payload.extend_from_slice(&3u64.to_le_bytes()); // epoch
    payload.extend_from_slice(&1u16.to_le_bytes()); // one outcome
    payload.push(7); // status 7 does not exist
    assert_eq!(
        decode_response(Verb::QueryOk, payload),
        Err(WireError::InvalidPayload { what: "unknown outcome status" })
    );

    // Non-boolean tsd_carried inside an UpdateOk.
    let mut payload = vec![0u8; 49];
    payload[32] = 2; // the flag byte after four u64s
    assert_eq!(
        decode_response(Verb::UpdateOk, payload),
        Err(WireError::InvalidPayload { what: "non-boolean tsd_carried" })
    );

    // Unknown stats scope byte.
    assert_eq!(
        decode_response(Verb::StatsOk, vec![9]),
        Err(WireError::InvalidPayload { what: "unknown stats scope" })
    );

    // Unknown overload reason.
    let mut payload = vec![0u8; 21];
    payload[0] = 0;
    assert_eq!(
        decode_response(Verb::Overloaded, payload),
        Err(WireError::InvalidPayload { what: "unknown overload reason" })
    );

    // Unknown error code, and a non-UTF-8 message.
    let mut payload = vec![99u8];
    payload.extend_from_slice(&0u16.to_le_bytes());
    assert_eq!(
        decode_response(Verb::Error, payload),
        Err(WireError::InvalidPayload { what: "unknown error code" })
    );
    let mut payload = vec![1u8]; // UnknownTenant
    payload.extend_from_slice(&2u16.to_le_bytes());
    payload.extend_from_slice(&[0xFF, 0xFE]); // invalid UTF-8
    assert_eq!(
        decode_response(Verb::Error, payload),
        Err(WireError::InvalidPayload { what: "non-UTF-8 string" })
    );
}

#[test]
fn request_and_response_verbs_do_not_cross_decode() {
    // A server must never accept a response verb, nor a client a request
    // verb — a desynchronized peer fails on the verb, not a misparse.
    assert_eq!(
        decode_request(Verb::QueryOk, Vec::new()),
        Err(WireError::UnknownVerb { verb: 0x81 })
    );
    assert_eq!(
        decode_response(Verb::Query, Vec::new()),
        Err(WireError::UnknownVerb { verb: 0x01 })
    );
}

// ---------------------------------------------------------------------------
// The same garbage against a live server

fn tiny_server() -> (Server, sd_core::GraphFingerprint) {
    let registry = Arc::new(TenantRegistry::new(BatchLimits {
        window: Duration::ZERO,
        ..BatchLimits::default()
    }));
    let (graph, _, _) = paper_figure1_graph();
    let key = registry.register(Arc::new(SearchService::new(graph))).expect("register");
    let server = Server::start(ServerConfig::default(), registry).expect("bind ephemeral port");
    (server, key)
}

#[test]
fn live_server_answers_garbage_header_with_typed_error_and_closes() {
    let (server, _) = tiny_server();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    // At least FRAME_HEADER_BYTES of garbage so the server's header read
    // completes and it can answer with a typed error before closing.
    client.send_bytes(b"GET / HTTP/1.1\r\nHost: example.invalid\r\n\r\n pad pad").expect("send");
    let resp = client.read_response().expect("typed reply before close");
    let Response::Error(err) = resp else { panic!("expected Error, got {resp:?}") };
    assert_eq!(err.code, ErrorCode::BadRequest);
    assert!(err.message.contains("magic"), "message was {:?}", err.message);
    // A malformed header desynchronizes the stream, so the server closed it.
    assert!(client.read_response().is_err(), "connection closed after header-level garbage");
    server.shutdown();
}

#[test]
fn live_server_rejects_oversized_length_prefix_without_reading_payload() {
    let (server, _) = tiny_server();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let mut header = Frame::new(Verb::Query, server_scope(), Bytes::new()).encode().as_ref()
        [..FRAME_HEADER_BYTES]
        .to_vec();
    header[8..16].copy_from_slice(&(MAX_FRAME_PAYLOAD + 1).to_le_bytes());
    client.send_bytes(&header).expect("send");
    // No payload follows — the server must reply from the header alone.
    let resp = client.read_response().expect("typed reply");
    let Response::Error(err) = resp else { panic!("expected Error, got {resp:?}") };
    assert_eq!(err.code, ErrorCode::BadRequest);
    assert!(err.message.contains("exceeds cap"), "message was {:?}", err.message);
    server.shutdown();
}

#[test]
fn live_server_survives_payload_level_garbage_and_keeps_the_connection() {
    let (server, key) = tiny_server();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    // A response verb sent as a request: well-formed header, nonsense
    // direction. Payload-level failure, so the stream stays usable.
    let frame = Frame::new(Verb::QueryOk, key, Bytes::from(vec![0u8; 10]));
    let resp = client.roundtrip(&frame).expect("typed reply");
    let Response::Error(err) = resp else { panic!("expected Error, got {resp:?}") };
    assert_eq!(err.code, ErrorCode::BadRequest);
    // Same connection, a real query now succeeds.
    let answer = client.query(key, 0, vec![WireQuery::new(3, 2)]).expect("connection survived");
    assert_eq!(answer.outcomes.len(), 1);
    server.shutdown();
}

#[test]
fn live_server_rejects_update_with_unknown_op_in_place() {
    let (server, key) = tiny_server();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let mut payload = UpdateRequest { updates: vec![GraphUpdate::Insert { u: 0, v: 99 }] }
        .encode_payload()
        .as_ref()
        .to_vec();
    payload[4] = 77;
    let frame = Frame::new(Verb::Update, key, Bytes::from(payload));
    let resp = client.roundtrip(&frame).expect("typed reply");
    let Response::Error(err) = resp else { panic!("expected Error, got {resp:?}") };
    assert_eq!(err.code, ErrorCode::BadRequest);
    assert!(err.message.contains("unknown update op"), "message was {:?}", err.message);
    // The hostile frame must not have published an epoch.
    let stats = client.tenant_stats(key).expect("stats");
    assert_eq!(stats.epoch, 0, "no update applied");
    server.shutdown();
}

#[test]
fn wrong_fingerprint_routes_to_typed_unknown_tenant() {
    let (server, key) = tiny_server();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let mut wrong = key;
    wrong.edge_checksum ^= 1;
    for request in [
        Request::Query(QueryRequest { deadline_ms: 0, queries: vec![WireQuery::new(3, 2)] }),
        Request::Update(UpdateRequest { updates: vec![GraphUpdate::Insert { u: 0, v: 99 }] }),
        Request::Stats,
    ] {
        let resp = client.roundtrip(&request.to_frame(wrong)).expect("typed reply");
        let Response::Error(err) = resp else { panic!("expected Error, got {resp:?}") };
        assert_eq!(err.code, ErrorCode::UnknownTenant);
        assert!(err.message.contains("no tenant"), "message was {:?}", err.message);
    }
    // The near-miss fingerprint did not disturb the real tenant.
    let answer = client.query(key, 0, vec![WireQuery::new(3, 2)]).expect("real tenant fine");
    assert_eq!(answer.epoch, 0);
    server.shutdown();
}
