//! Loopback end-to-end suite: a real `Server` on 127.0.0.1, real TCP
//! clients, two tenants, concurrent batched queries racing live updates —
//! wire answers must byte-match in-process answers for the epoch each
//! response reports. Plus the operational paths: every admission shed is
//! a typed `Overloaded`, deadlines produce partial batches, and graceful
//! shutdown drains accepted requests.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use sd_core::{
    paper_figure18_graph, paper_figure1_graph, EngineKind, GraphFingerprint, QuerySpec,
    SearchService, TopREntry, WorkerPool,
};
use sd_graph::GraphUpdate;
use sd_server::{
    AdmissionLimits, BatchLimits, Client, ErrorCode, OverloadReason, QueryOutcome, Response,
    ServeError, Server, ServerConfig, TenantRegistry, WireQuery,
};

fn figure1_service() -> Arc<SearchService> {
    let (graph, _, _) = paper_figure1_graph();
    Arc::new(SearchService::new(graph))
}

fn figure18_service() -> Arc<SearchService> {
    let (graph, _, _) = paper_figure18_graph();
    Arc::new(SearchService::new(graph))
}

fn start(
    batch: BatchLimits,
    admission: AdmissionLimits,
    services: Vec<Arc<SearchService>>,
) -> (Server, Vec<GraphFingerprint>) {
    let registry = Arc::new(TenantRegistry::new(batch));
    let keys = services
        .into_iter()
        .map(|svc| registry.register(svc).expect("unique fingerprint"))
        .collect();
    let config = ServerConfig::new()
        .addr("127.0.0.1:0")
        .admission(admission)
        .drain_grace(Duration::from_secs(20));
    (Server::start(config, registry).expect("bind"), keys)
}

/// The tentpole E2E: two tenants, several client threads firing batched
/// queries while another client applies live updates over TCP. Every
/// QueryOk reports the exact epoch it pinned; a client-side replica
/// applying the same update batches reproduces every epoch's expected
/// answer, and all observed (epoch, entries) pairs must byte-match it.
#[test]
fn concurrent_queries_and_updates_match_in_process_answers() {
    let (server, keys) = start(
        BatchLimits::default(),
        AdmissionLimits::default(),
        vec![figure1_service(), figure18_service()],
    );
    let addr = server.local_addr();
    let (key1, key18) = (keys[0], keys[1]);
    // Pin a concrete engine on both sides: Auto's warmup heuristic is
    // history-dependent, and different engines may break score ties
    // differently — byte-matching needs the same engine everywhere.
    let spec1 = QuerySpec::new(3, 4).unwrap().with_engine(EngineKind::Online);
    let spec18 = QuerySpec::new(4, 3).unwrap().with_engine(EngineKind::Online);
    let wire1 = WireQuery { k: 3, r: 4, engine: EngineKind::Online };
    let wire18 = WireQuery { k: 4, r: 3, engine: EngineKind::Online };

    // Client-side replica of tenant 1: applies the same update batches in
    // the same order, so its epoch numbering and answers match the
    // server's tenant exactly.
    let replica = figure1_service();
    let expected1: Arc<Mutex<HashMap<u64, Vec<TopREntry>>>> = Arc::new(Mutex::new(HashMap::new()));
    expected1.lock().unwrap().insert(0, replica.top_r(&spec1).unwrap().entries);
    let expected18 = figure18_service().top_r(&spec18).unwrap().entries;

    const UPDATE_BATCHES: u64 = 6;
    let updater = {
        let replica = replica.clone();
        let expected1 = expected1.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("updater connect");
            for i in 0..UPDATE_BATCHES {
                // Toggle a non-paper edge: every batch applies, so every
                // batch publishes exactly one epoch on both sides.
                let batch = if i % 2 == 0 {
                    vec![GraphUpdate::Insert { u: 0, v: 40 }]
                } else {
                    vec![GraphUpdate::Remove { u: 0, v: 40 }]
                };
                let resp = client.update(key1, batch.clone()).expect("wire update");
                assert_eq!(resp.applied, 1);
                assert_eq!(resp.epoch, i + 1, "wire epochs are sequential");
                let mirror = replica.apply_updates(&batch).expect("replica update");
                assert_eq!(mirror.epoch, resp.epoch, "replica tracks wire epochs");
                expected1
                    .lock()
                    .unwrap()
                    .insert(resp.epoch, replica.top_r(&spec1).unwrap().entries);
                std::thread::sleep(Duration::from_millis(3));
            }
        })
    };

    // Tenant-1 queriers: collect observed (epoch, entries) pairs and
    // verify after every thread joined — no races with the updater's
    // bookkeeping.
    let mut queriers = Vec::new();
    for _ in 0..2 {
        queriers.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("querier connect");
            let mut observed = Vec::new();
            for _ in 0..20 {
                let resp = client.query(key1, 0, vec![wire1]).expect("wire query");
                assert_eq!(resp.outcomes.len(), 1);
                let QueryOutcome::Answered(entries) = resp.outcomes.into_iter().next().unwrap()
                else {
                    panic!("expected an answer");
                };
                observed.push((resp.epoch, entries));
                std::thread::sleep(Duration::from_millis(1));
            }
            observed
        }));
    }
    // Tenant-18 querier: no updates there, so every answer is epoch 0 and
    // byte-identical — multi-tenant routing does not bleed across graphs.
    let quiet = {
        let expected18 = expected18.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("quiet connect");
            for _ in 0..15 {
                let resp = client.query(key18, 0, vec![wire18]).expect("wire query");
                assert_eq!(resp.epoch, 0, "tenant 18 never updated");
                let QueryOutcome::Answered(entries) = &resp.outcomes[0] else {
                    panic!("expected an answer");
                };
                assert_eq!(entries, &expected18, "tenant 18 answers never drift");
            }
        })
    };

    updater.join().expect("updater");
    quiet.join().expect("quiet querier");
    let expected1 = expected1.lock().unwrap();
    let mut checked = 0usize;
    for handle in queriers {
        for (epoch, entries) in handle.join().expect("querier") {
            let want = expected1
                .get(&epoch)
                .unwrap_or_else(|| panic!("answer pinned unpublished epoch {epoch}"));
            assert_eq!(&entries, want, "epoch {epoch} answer byte-matches in-process");
            checked += 1;
        }
    }
    assert_eq!(checked, 40, "every query verified against its epoch");
    drop(expected1);

    let stats = server.stats();
    assert!(stats.queries_batched >= 55, "tenant batchers saw the queries");
    assert!(stats.batches_executed >= 1);
    let report = server.shutdown();
    assert!(report.within_grace);
}

#[test]
fn connection_limit_sheds_with_typed_overloaded_frame() {
    let (server, keys) = start(
        BatchLimits { window: Duration::ZERO, ..BatchLimits::default() },
        AdmissionLimits { max_connections: 1, retry_after_ms: 7, ..AdmissionLimits::default() },
        vec![figure1_service()],
    );
    let addr = server.local_addr();
    // First client occupies the single slot (a query proves it is live).
    let mut first = Client::connect(addr).expect("first connect");
    first.query(keys[0], 0, vec![WireQuery::new(3, 2)]).expect("admitted");
    // Second client is shed with the typed frame, not a hang or a bare
    // close.
    let mut second = Client::connect(addr).expect("tcp connect still succeeds");
    let resp = second.read_response().expect("typed shed frame");
    let Response::Overloaded(info) = resp else { panic!("expected Overloaded, got {resp:?}") };
    assert_eq!(info.reason, OverloadReason::Connections);
    assert_eq!((info.measured, info.limit, info.retry_after_ms), (1, 1, 7));
    // The shed connection is closed afterwards…
    assert!(second.read_response().is_err());
    // …and the admitted one keeps working.
    first.query(keys[0], 0, vec![WireQuery::new(3, 2)]).expect("still admitted");
    let report = server.shutdown();
    assert!(report.within_grace);
}

#[test]
fn deep_build_queue_sheds_queries_with_typed_overloaded_frame() {
    // A 1-thread private pool the test can park at will.
    let (graph, _, _) = paper_figure1_graph();
    let service = Arc::new(SearchService::with_pool(graph, Arc::new(WorkerPool::new(1))));
    let (server, keys) = start(
        BatchLimits { window: Duration::ZERO, ..BatchLimits::default() },
        AdmissionLimits { max_build_queue: 0, retry_after_ms: 11, ..AdmissionLimits::default() },
        vec![service.clone()],
    );
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Park the pool's only worker and stack a job behind it: the queue
    // depth is now above the 0-job admission threshold.
    let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
    service.pool().submit(move || {
        let _ = release_rx.recv();
    });
    service.pool().submit(|| {});
    let err =
        client.query(keys[0], 0, vec![WireQuery::new(3, 2)]).expect_err("shed behind the backlog");
    let ServeError::Overloaded(info) = err else { panic!("expected Overloaded, got {err:?}") };
    assert_eq!(info.reason, OverloadReason::BuildQueue);
    assert!(info.measured >= 1);
    assert_eq!((info.limit, info.retry_after_ms), (0, 11));

    // Release the backlog; once it drains the same query is admitted.
    release_tx.send(()).expect("release");
    for _ in 0..200 {
        if service.pool().queued_jobs() == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let resp = client.query(keys[0], 0, vec![WireQuery::new(3, 2)]).expect("admitted again");
    assert!(matches!(resp.outcomes[0], QueryOutcome::Answered(_)));
    let report = server.shutdown();
    assert!(report.within_grace);
}

#[test]
fn full_query_queue_sheds_whole_frames_with_typed_overloaded_frame() {
    let (server, keys) = start(
        BatchLimits { window: Duration::from_millis(300), max_pending: 1 },
        AdmissionLimits { retry_after_ms: 13, ..AdmissionLimits::default() },
        vec![figure1_service()],
    );
    let addr = server.local_addr();
    let key = keys[0];
    // Leader frame: parks its one query and sleeps the batch window.
    let leader = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("leader connect");
        client.query(key, 0, vec![WireQuery::new(3, 2)]).expect("leader admitted")
    });
    std::thread::sleep(Duration::from_millis(80));
    // Second frame while the leader's query still occupies the 1-slot
    // accumulator: shed atomically.
    let mut client = Client::connect(addr).expect("connect");
    let err = client.query(key, 0, vec![WireQuery::new(3, 2)]).expect_err("accumulator full");
    let ServeError::Overloaded(info) = err else { panic!("expected Overloaded, got {err:?}") };
    assert_eq!(info.reason, OverloadReason::QueryQueue);
    assert_eq!((info.measured, info.limit, info.retry_after_ms), (1, 1, 13));
    // The shed did not hurt the parked leader.
    let resp = leader.join().expect("leader thread");
    assert!(matches!(resp.outcomes[0], QueryOutcome::Answered(_)));
    let report = server.shutdown();
    assert!(report.within_grace);
}

#[test]
fn short_deadline_is_answered_by_an_early_flush_not_expired() {
    // A 30 ms deadline against a 300 ms batch window: the leader caps its
    // wait at the deadline, so the query is *answered* well before the
    // window would have elapsed. (Before the cap existed, this frame was
    // answered `Expired` without ever running.)
    let (server, keys) = start(
        BatchLimits { window: Duration::from_millis(300), ..BatchLimits::default() },
        AdmissionLimits::default(),
        vec![figure1_service()],
    );
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let started = std::time::Instant::now();
    let resp = client.query(keys[0], 30, vec![WireQuery::new(3, 2)]).expect("admitted");
    let elapsed = started.elapsed();
    assert!(
        matches!(resp.outcomes[0], QueryOutcome::Answered(_)),
        "short deadline must run, got {:?}",
        resp.outcomes
    );
    assert!(elapsed < Duration::from_millis(290), "flush was capped, not the full window");
    let report = server.shutdown();
    assert!(report.within_grace);
}

#[test]
fn expired_deadline_yields_partial_batch_not_a_drop() {
    // The batch leader is a pool job, so a 1-thread private pool the test
    // parks pins *every* pending query in the accumulator until release —
    // a deterministic way to hold a short-deadline frame past its
    // deadline. (The old version of this test leaned on the leader's
    // uncancellable sleep; arrivals now wake the leader, so parking the
    // pool is the only honest way to force an expiry.)
    let (graph, _, _) = paper_figure1_graph();
    let service = Arc::new(SearchService::with_pool(graph, Arc::new(WorkerPool::new(1))));
    let (server, keys) = start(
        BatchLimits { window: Duration::ZERO, ..BatchLimits::default() },
        AdmissionLimits::default(),
        vec![service.clone()],
    );
    let addr = server.local_addr();
    let key = keys[0];
    let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
    service.pool().submit(move || {
        let _ = release_rx.recv();
    });

    // Frame A: no deadline. Its flush is queued behind the parked worker.
    let lively = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        client.query(key, 0, vec![WireQuery::new(3, 2)]).expect("admitted")
    });
    std::thread::sleep(Duration::from_millis(30));
    // Frame B: 1 ms deadline, coalescing behind A while the leader is
    // still parked. By the time the worker is released the deadline is
    // long past — expired per-entry, never dropping its batch mates.
    let late = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        client.query(key, 1, vec![WireQuery::new(3, 2), WireQuery::new(3, 3)]).expect("admitted")
    });
    std::thread::sleep(Duration::from_millis(30));
    release_tx.send(()).expect("release");

    let resp = late.join().expect("late frame thread");
    assert_eq!(resp.outcomes.len(), 2, "expired queries still get outcome slots");
    assert!(
        resp.outcomes.iter().all(|o| matches!(o, QueryOutcome::Expired)),
        "got {:?}",
        resp.outcomes
    );
    let mate = lively.join().expect("lively thread");
    assert!(matches!(mate.outcomes[0], QueryOutcome::Answered(_)), "mate frame ran");
    let report = server.shutdown();
    assert!(report.within_grace);
}

#[test]
fn invalid_query_fails_its_slot_but_frame_mates_answer() {
    let (server, keys) = start(
        BatchLimits { window: Duration::ZERO, ..BatchLimits::default() },
        AdmissionLimits::default(),
        vec![figure1_service()],
    );
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let resp = client
        .query(
            keys[0],
            0,
            vec![
                WireQuery::new(3, 2),
                WireQuery::new(1, 2),     // k < 2: rejected at spec resolution
                WireQuery::new(3, 9_999), // r > n: rejected at execution
                WireQuery::new(3, 1),
            ],
        )
        .expect("frame admitted");
    assert!(matches!(resp.outcomes[0], QueryOutcome::Answered(_)), "got {:?}", resp.outcomes[0]);
    let QueryOutcome::Failed { code, .. } = &resp.outcomes[1] else {
        panic!("expected failure, got {:?}", resp.outcomes[1]);
    };
    assert_eq!(*code, ErrorCode::BadRequest);
    assert!(matches!(resp.outcomes[2], QueryOutcome::Failed { .. }), "got {:?}", resp.outcomes[2]);
    assert!(matches!(resp.outcomes[3], QueryOutcome::Answered(_)), "got {:?}", resp.outcomes[3]);
    let report = server.shutdown();
    assert!(report.within_grace);
}

#[test]
fn graceful_shutdown_drains_the_inflight_query() {
    let (server, keys) = start(
        BatchLimits { window: Duration::from_millis(250), ..BatchLimits::default() },
        AdmissionLimits::default(),
        vec![figure1_service()],
    );
    let addr = server.local_addr();
    let key = keys[0];
    let expected = figure1_service()
        .top_r(&QuerySpec::new(3, 4).unwrap().with_engine(EngineKind::Online))
        .unwrap()
        .entries;

    // A slow in-flight query: accepted, parked in the 250 ms batch window.
    let inflight = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        client
            .query(key, 0, vec![WireQuery { k: 3, r: 4, engine: EngineKind::Online }])
            .expect("accepted before drain")
    });
    std::thread::sleep(Duration::from_millis(60));

    // Trigger graceful shutdown over the wire while that query is parked.
    let mut admin = Client::connect(addr).expect("admin connect");
    admin.shutdown().expect("shutdown acknowledged");
    assert!(server.is_draining());

    // The accepted query still completes with the right answer.
    let resp = inflight.join().expect("inflight thread");
    let QueryOutcome::Answered(entries) = &resp.outcomes[0] else {
        panic!("drained query must be answered, got {:?}", resp.outcomes[0]);
    };
    assert_eq!(entries, &expected, "drained answer byte-matches in-process");

    let report = server.shutdown();
    assert!(report.within_grace, "drain finished without force-closes: {report:?}");
    assert_eq!(report.forced_closes, 0);

    // The listener is gone: new connections are refused (or die
    // instantly), not silently queued.
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut late) => assert!(late.read_response().is_err(), "post-drain socket must be dead"),
    }
}
