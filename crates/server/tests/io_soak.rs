//! I/O-multiplexing soak: the readiness loop must hold many more open
//! connections than it has threads. 64 concurrent clients all round-trip
//! queries while `/proc` shows exactly the configured number of live
//! `sd-io-*` threads — the thread-per-connection regime would show 64.

use std::sync::Arc;
use std::time::Duration;

use sd_core::{paper_figure1_graph, SearchService};
use sd_server::{
    BatchLimits, Client, QueryOutcome, Server, ServerConfig, TenantRegistry, WireQuery,
};

/// Counts this process's live threads whose name starts with `sd-io-`,
/// by reading `/proc/self/task/*/comm` (Linux truncates names to 15
/// bytes, well past our prefix).
fn live_io_threads() -> usize {
    std::fs::read_dir("/proc/self/task")
        .expect("linux procfs")
        .filter_map(|entry| {
            let comm = entry.ok()?.path().join("comm");
            let name = std::fs::read_to_string(comm).ok()?;
            name.trim_end().starts_with("sd-io-").then_some(())
        })
        .count()
}

#[test]
fn sixty_four_connections_share_a_fixed_io_thread_set() {
    const CLIENTS: usize = 64;
    const IO_THREADS: usize = 2;

    let registry = Arc::new(TenantRegistry::new(BatchLimits {
        window: Duration::ZERO,
        ..BatchLimits::default()
    }));
    let (graph, _, _) = paper_figure1_graph();
    let key = registry.register(Arc::new(SearchService::new(graph))).expect("register");
    let config = ServerConfig::new().addr("127.0.0.1:0").io_threads(IO_THREADS);
    let server = Server::start(config, registry).expect("bind");
    let addr = server.local_addr();

    // Open all 64 connections first — every socket stays open for the
    // whole test, so the server really is multiplexing 64 at once.
    let mut clients: Vec<Client> =
        (0..CLIENTS).map(|_| Client::connect(addr).expect("connect")).collect();

    // Each connection proves it is live with a full query round-trip.
    for client in &mut clients {
        let resp = client.query(key, 0, vec![WireQuery::new(3, 2)]).expect("query");
        assert!(matches!(resp.outcomes[0], QueryOutcome::Answered(_)), "got {:?}", resp.outcomes);
    }

    // All 64 are still open server-side… (the gauge is claimed at accept,
    // so no settling loop is needed once every round-trip answered)
    let stats = server.stats();
    assert_eq!(stats.active_connections, CLIENTS as u64, "all connections held open");
    assert!(stats.accepted_connections >= CLIENTS as u64);

    // …yet the process runs exactly the configured I/O threads, not one
    // per connection.
    assert_eq!(live_io_threads(), IO_THREADS, "connection count must not grow the I/O thread set");

    drop(clients);
    let report = server.shutdown();
    assert!(report.within_grace, "{report:?}");
}
