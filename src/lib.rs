//! # structural-diversity — truss-based structural diversity search
//!
//! Umbrella crate re-exporting the whole system: a faithful Rust
//! reproduction of *"Truss-based Structural Diversity Search in Large
//! Graphs"* (Huang, Huang & Xu — TKDE / ICDE'21 extended abstract).
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use structural_diversity::graph::GraphBuilder;
//! use structural_diversity::search::{EngineKind, QuerySpec, SearchService};
//!
//! // The paper's running example (Figure 1): vertex v's neighborhood
//! // decomposes into three social contexts at k = 4.
//! let g = GraphBuilder::new()
//!     .extend_edges(structural_diversity::search::paper_figure1_edges())
//!     .build();
//! // Share one service across threads: every query method takes `&self`.
//! // Index engines build in the background — queries never wait for one;
//! // `wait_ready` joins the builds when you want the index path for sure.
//! let service = Arc::new(SearchService::new(g));
//! service.warmup([EngineKind::Gct]);
//! service.wait_ready([EngineKind::Gct]);
//! // `EngineKind::Auto` picks an engine by graph size and query rate;
//! // `.with_engine(EngineKind::Tsd)` (or any of the five) routes explicitly.
//! let result = service.top_r(&QuerySpec::new(4, 1)?)?;
//! assert_eq!(result.entries[0].score, 3);
//! assert_eq!(result.metrics.engine, EngineKind::Gct.name());
//! # Ok::<(), structural_diversity::search::SearchError>(())
//! ```
//!
//! See the crate-level docs of the members for details:
//! * [`graph`] — CSR graphs, triangle listing, bitsets, union-find.
//! * [`truss`] — truss/core decomposition.
//! * [`search`] — the paper's algorithms (online, bound, TSD, GCT, hybrid,
//!   baselines).
//! * [`influence`] — independent-cascade contagion simulation.
//! * [`datasets`] — synthetic dataset generators and registry.

/// Runs the README's quickstart code block under `cargo test --doc` so the
/// front-page example can never drift from the real API.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
pub struct ReadmeDoctest;

pub use sd_core as search;
pub use sd_datasets as datasets;
pub use sd_graph as graph;
pub use sd_influence as influence;
pub use sd_truss as truss;
